//! Maximal information coefficient (Table 5's `MIC` rows).
//!
//! MIC (Reshef et al., *Science* 2011) measures arbitrary — not just
//! linear — dependence: over all grid resolutions `(nx, ny)` with
//! `nx·ny ≤ B(n) = n^0.6`, it takes the maximum grid mutual information
//! normalized by `log min(nx, ny)`.
//!
//! This is the **ApproxMaxMI** estimator from the original paper: one axis
//! is equipartitioned into rows (on ranks); the other axis's column
//! boundaries are *optimized* by dynamic programming over "clumps"
//! (maximal runs of same-row points), which is what gives MIC its power on
//! noisy functional relationships. Both orientations are evaluated and the
//! maximum taken. For tractability the clump count is capped by merging
//! into superclumps (the `ĉ` parameter of the reference implementation)
//! and very large samples are stride-subsampled.

#![allow(clippy::needless_range_loop)] // index-heavy numeric kernels read clearer this way
/// Maximum sample size used; larger inputs are stride-subsampled
/// (deterministically).
const MAX_N: usize = 2000;

/// Cap on clump count per DP (superclump merging), as a multiple of the
/// maximum column count.
const CLUMP_FACTOR: usize = 5;

/// Average ranks (ties share the mean rank), in [0, n).
fn ranks(v: &[f64]) -> Vec<f64> {
    let n = v.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).expect("finite values"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        let mean_rank = (i + j) as f64 / 2.0;
        for &k in &idx[i..=j] {
            out[k] = mean_rank;
        }
        i = j + 1;
    }
    out
}

/// Entropy of a count vector (natural log).
fn entropy(counts: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &c in counts {
        if c > 0.0 {
            let p = c / total;
            h -= p * p.ln();
        }
    }
    h
}

/// Assign each point to one of `ny` equipartition rows by its y-rank.
fn row_assignment(ry: &[f64], ny: usize) -> Vec<usize> {
    let n = ry.len();
    ry.iter().map(|&r| ((r * ny as f64 / n as f64) as usize).min(ny - 1)).collect()
}

/// Build clump boundaries over points sorted by x: maximal runs of
/// consecutive points in the same row; equal x-values never split. Then
/// merge into at most `max_clumps` superclumps by point-count
/// equipartition. Returns cumulative point counts and per-row cumulative
/// counts at each clump boundary (index 0 = empty prefix).
fn clumps(
    xs: &[f64],
    rows: &[usize],
    order: &[usize],
    ny: usize,
    max_clumps: usize,
) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = order.len();
    // Raw clump end positions (exclusive indices into `order`).
    let mut ends = Vec::new();
    let mut i = 0;
    while i < n {
        let mut j = i + 1;
        // Extend while same row; and never split equal x values.
        while j < n && (rows[order[j]] == rows[order[i]] || xs[order[j]] == xs[order[j - 1]]) {
            // A tie in x forces the point into the clump regardless of row.
            if rows[order[j]] != rows[order[i]] && xs[order[j]] != xs[order[j - 1]] {
                break;
            }
            j += 1;
        }
        ends.push(j);
        i = j;
    }
    // Superclump merge: keep ~max_clumps boundaries, equispaced by points.
    let ends: Vec<usize> = if ends.len() > max_clumps {
        let mut merged = Vec::with_capacity(max_clumps);
        let target = n as f64 / max_clumps as f64;
        let mut next = target;
        for &e in &ends {
            if e as f64 >= next || e == n {
                merged.push(e);
                next = e as f64 + target;
            }
        }
        if *merged.last().expect("nonempty") != n {
            merged.push(n);
        }
        merged
    } else {
        ends
    };
    // Cumulative counts.
    let k = ends.len();
    let mut cum = Vec::with_capacity(k + 1);
    let mut rowcum = Vec::with_capacity(k + 1);
    cum.push(0.0);
    rowcum.push(vec![0.0; ny]);
    let mut pos = 0;
    for &e in &ends {
        let mut rc = rowcum.last().expect("nonempty").clone();
        while pos < e {
            rc[rows[order[pos]]] += 1.0;
            pos += 1;
        }
        cum.push(e as f64);
        rowcum.push(rc);
    }
    (cum, rowcum)
}

/// For one orientation (equipartition y into `ny` rows, optimize x-axis
/// columns), return `best[l]` = max mutual information with exactly `l`
/// columns, for `l in 2..=max_cols`.
fn optimize_axis(xs: &[f64], ry: &[f64], ny: usize, max_cols: usize) -> Vec<f64> {
    let n = xs.len();
    let rows = row_assignment(ry, ny);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        xs[a].partial_cmp(&xs[b]).expect("finite values").then(rows[a].cmp(&rows[b]))
    });
    let max_clumps = (CLUMP_FACTOR * max_cols).max(12);
    let (cum, rowcum) = clumps(xs, &rows, &order, ny, max_clumps);
    let k = cum.len() - 1; // number of clumps
    if k < 2 {
        return vec![0.0; max_cols + 1];
    }
    // H(Q): row entropy over all points.
    let h_q = entropy(&rowcum[k], cum[k]);
    // Conditional row entropy of the clump span (s, t].
    let hcond = |s: usize, t: usize| -> f64 {
        let total = cum[t] - cum[s];
        if total <= 0.0 {
            return 0.0;
        }
        let counts: Vec<f64> = (0..ny).map(|r| rowcum[t][r] - rowcum[s][r]).collect();
        entropy(&counts, total)
    };
    let l_max = max_cols.min(k);
    // C[t][l] = min average conditional entropy of prefix t with l columns.
    let mut c_prev: Vec<f64> = (0..=k).map(|t| hcond(0, t)).collect(); // l = 1
    let mut best = vec![0.0f64; max_cols + 1];
    for l in 2..=l_max {
        let mut c_cur = vec![f64::INFINITY; k + 1];
        for t in l..=k {
            let mut m = f64::INFINITY;
            for s in (l - 1)..t {
                if cum[t] <= 0.0 {
                    continue;
                }
                let v = (cum[s] / cum[t]) * c_prev[s] + ((cum[t] - cum[s]) / cum[t]) * hcond(s, t);
                if v < m {
                    m = v;
                }
            }
            c_cur[t] = m;
        }
        best[l] = (h_q - c_cur[k]).max(0.0);
        c_prev = c_cur;
    }
    best
}

/// The maximal information coefficient of two samples, in `[0, 1]`.
///
/// Returns 0 for degenerate inputs (fewer than 8 points or a constant
/// variable — the paper's Table 5 reports MIC 0.00 for the uniform C and P
/// columns).
pub fn mic(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "inputs must be the same length");
    let n_all = x.len();
    if n_all < 8 {
        return 0.0;
    }
    let constant = |v: &[f64]| v.iter().all(|&a| a == v[0]);
    if constant(x) || constant(y) {
        return 0.0;
    }
    // Deterministic stride subsample for large inputs.
    let (xs, ys): (Vec<f64>, Vec<f64>) = if n_all > MAX_N {
        let stride = n_all.div_ceil(MAX_N);
        (x.iter().step_by(stride).copied().collect(), y.iter().step_by(stride).copied().collect())
    } else {
        (x.to_vec(), y.to_vec())
    };
    let n = xs.len();
    let rx = ranks(&xs);
    let ry = ranks(&ys);
    let b = ((n as f64).powf(0.6) as usize).max(4);

    let mut best = 0.0f64;
    // Orientation 1: rows on y, optimized columns on x; orientation 2:
    // swapped.
    for (ax, ay) in [(&xs, &ry), (&ys, &rx)] {
        for nrows in 2..=b / 2 {
            let max_cols = b / nrows;
            if max_cols < 2 {
                break;
            }
            let mi = optimize_axis(ax, ay, nrows, max_cols);
            for (ncols, &m) in mi.iter().enumerate().skip(2) {
                let norm = (nrows.min(ncols) as f64).ln();
                if norm > 0.0 {
                    best = best.max(m / norm);
                }
            }
        }
    }
    best.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64 / n as f64).collect()
    }

    /// Deterministic uniform noise in [0, 1).
    fn noise(n: usize, seed: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let mut z = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn identity_is_maximal() {
        let x = grid(500);
        assert!(mic(&x, &x) > 0.95, "MIC(X,X) = {}", mic(&x, &x));
    }

    #[test]
    fn linear_is_maximal() {
        let x = grid(500);
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 1.0).collect();
        assert!(mic(&x, &y) > 0.95);
    }

    #[test]
    fn parabola_is_high_despite_zero_pearson() {
        let x: Vec<f64> = (-250..250).map(|i| i as f64 / 250.0).collect();
        let y: Vec<f64> = x.iter().map(|v| v * v).collect();
        let m = mic(&x, &y);
        assert!(m > 0.8, "MIC(x, x²) = {m}");
        assert!(crate::correlation::pearson(&x, &y).unwrap().abs() < 0.05);
    }

    #[test]
    fn sine_is_detected() {
        let x = grid(600);
        let y: Vec<f64> = x.iter().map(|v| (4.0 * std::f64::consts::PI * v).sin()).collect();
        assert!(mic(&x, &y) > 0.8, "MIC = {}", mic(&x, &y));
    }

    #[test]
    fn noisy_linear_beats_pearson_squared() {
        // The property the paper leans on: for a noisy relationship MIC
        // stays well above zero while CC degrades.
        let x = grid(800);
        let e = noise(800, 7);
        let y: Vec<f64> = x.iter().zip(&e).map(|(v, n)| v + 0.5 * n).collect();
        let m = mic(&x, &y);
        assert!(m > 0.3, "noisy-linear MIC = {m}");
    }

    #[test]
    fn independence_is_low() {
        let x = noise(800, 1);
        let y = noise(800, 2);
        let m = mic(&x, &y);
        assert!(m < 0.35, "MIC of independent data = {m}");
    }

    #[test]
    fn functional_relation_scores_above_independence() {
        let x = noise(600, 3);
        let y_fn: Vec<f64> = x.iter().map(|v| (6.0 * v).sin()).collect();
        let y_ind = noise(600, 4);
        assert!(mic(&x, &y_fn) > mic(&x, &y_ind) + 0.2);
    }

    #[test]
    fn constant_inputs_are_zero() {
        let x = vec![1.0; 100];
        let y = grid(100);
        assert_eq!(mic(&x, &y), 0.0);
        assert_eq!(mic(&y, &x), 0.0);
    }

    #[test]
    fn short_inputs_are_zero() {
        assert_eq!(mic(&[1.0, 2.0], &[3.0, 4.0]), 0.0);
    }

    #[test]
    fn bounded_unit_interval() {
        let x: Vec<f64> = (0..200).map(|i| ((i * 13) % 29) as f64).collect();
        let y: Vec<f64> = (0..200).map(|i| ((i * 17) % 31) as f64).collect();
        let m = mic(&x, &y);
        assert!((0.0..=1.0).contains(&m));
    }

    #[test]
    fn large_input_subsampling_is_stable() {
        let x = grid(10_000);
        let y: Vec<f64> = x.iter().map(|v| v * v).collect();
        let m = mic(&x, &y);
        assert!(m > 0.8, "subsampled MIC = {m}");
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[5.0, 1.0, 5.0, 3.0]);
        // sorted: 1(0), 3(1), 5(2), 5(3): ties share (2+3)/2 = 2.5
        assert_eq!(r, vec![2.5, 0.0, 2.5, 1.0]);
    }

    #[test]
    fn entropy_of_uniform_counts() {
        let h = entropy(&[5.0, 5.0], 10.0);
        assert!((h - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(entropy(&[10.0, 0.0], 10.0), 0.0);
    }
}
