//! Nonblocking readiness event-loop HTTP front end.
//!
//! The threaded front end (`server.rs`) spends one OS thread per open
//! connection; a thousand idle keep-alive clients cost a thousand parked
//! threads. Here, `acceptors` poller shards each own a set of
//! connections as plain state — a read buffer feeding the shared
//! incremental [`RequestParser`], a pending write buffer, and a few
//! flags — and multiplex them over `poll(2)` (via `shim.rs`). An idle
//! connection costs the bytes of its [`Conn`] struct and one pollfd
//! entry, nothing else; thread count is fixed at startup regardless of
//! connection count.
//!
//! ## Data flow
//!
//! Every shard polls: its *wake* socket, the shared listener (all shards
//! poll it; one wins each `accept` race), and its connections. Complete
//! requests go through the same `routes::route` as the threaded front
//! end. Admin responses are rendered inline; `/predict` rows are
//! submitted to the batcher with a **callback** sink
//! ([`crate::batcher::ReplySink::Callback`]), so the poller never blocks
//! on inference: the batch worker renders the response, pushes it onto
//! the shard's completion queue, and pokes the wake socket (a loopback
//! `TcpStream` pair — `poll` can wait on sockets only, and the wake write
//! is coalesced by an atomic flag so a busy shard is poked once per
//! wakeup, not once per response).
//!
//! ## Timeouts
//!
//! Two distinct clocks, same semantics as the blocking front end:
//! the 200 ms poll tick bounds how stale the shutdown flag and deadline
//! sweep can be (an *idle* connection just keeps sitting there, free);
//! the per-request deadline starts at a request's first byte and answers
//! **408** if the request is still incomplete when it expires. Slow
//! clients who keep trickling bytes inside the deadline are served
//! normally — the bug class this front end was built not to have.

use crate::batcher::{Batcher, ReplySink};
use crate::http::{render_response, HttpError, RequestParser};
use crate::metrics::ServerMetrics;
use crate::registry::ModelRegistry;
use crate::routes::{
    prediction_response, protocol_error_response, route, submit_error_response, Ctx, Routed,
};
use crate::server::{Frontend, ServeConfig, Server};
use crate::shim::{poll_fds, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poll timeout: how often a shard re-checks the stopping flag and
/// sweeps request deadlines even with no socket activity.
const TICK_MS: i32 = 200;

/// Most predictions one connection may have in the batcher at once.
/// HTTP/1.1 pipelining lets a client send many requests back-to-back;
/// admitting them concurrently (answers are re-sequenced, see
/// [`stage_response`]) turns a pipelined burst into one inference batch
/// and one writev-sized response flush. The cap bounds per-connection
/// memory; anything deeper waits in the parser buffer.
const PIPELINE_MAX: usize = 128;

/// Stop reading from a connection whose client isn't draining responses.
const MAX_OUT_BUFFER: usize = 256 * 1024;

/// One rendered response bound for a connection:
/// (token, sequence number, bytes, close-after).
type Completion = (u64, u64, Vec<u8>, bool);

/// Cross-thread doorbell for one shard: batch workers push completions
/// and poke the wake socket; the atomic coalesces pokes while the shard
/// is busy.
struct Waker {
    tx: TcpStream,
    pending: AtomicBool,
}

impl Waker {
    fn wake(&self) {
        if !self.pending.swap(true, Ordering::AcqRel) {
            // The shard drains this socket every loop; a full buffer
            // means a wakeup is already guaranteed.
            let _ = (&self.tx).write(&[1u8]);
        }
    }
}

/// State a shard shares with batch-worker callbacks.
struct ShardShared {
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl ShardShared {
    fn complete(&self, token: u64, seq: u64, bytes: Vec<u8>, close: bool) {
        self.completions.lock().expect("completion queue").push((token, seq, bytes, close));
        self.waker.wake();
    }
}

/// Per-connection state machine. A few hundred bytes plus buffers; this
/// is the whole cost of an idle keep-alive connection.
struct Conn {
    stream: TcpStream,
    token: u64,
    parser: RequestParser,
    /// Bytes queued to write; a short write drains from the front and
    /// resumes on the next `POLLOUT`.
    out: VecDeque<u8>,
    /// Predictions in flight in the batcher for this connection.
    in_flight: usize,
    /// Sequence number the next parsed request will be assigned.
    next_seq: u64,
    /// Sequence number the next response appended to `out` must have —
    /// pipelined answers go on the wire in request order, whatever order
    /// inference finishes in.
    write_seq: u64,
    /// Finished responses waiting for their turn on the wire.
    stash: std::collections::BTreeMap<u64, (Vec<u8>, bool)>,
    /// Close once `out` drains (set when a close-flagged response is
    /// sequenced into `out`).
    close_after_write: bool,
    /// Peer sent FIN (or sent `Connection: close`); it may still be
    /// reading our side (half-close), so pending responses still flush.
    read_closed: bool,
    /// First byte of the current partial request (deadline clock).
    started: Option<Instant>,
}

impl Conn {
    /// True when nothing is pending in either direction: safe to drop on
    /// shutdown or after a read-side close.
    fn idle(&self) -> bool {
        self.out.is_empty()
            && self.in_flight == 0
            && self.stash.is_empty()
            && !self.parser.has_partial()
    }
}

/// File a finished response under its sequence number, then move every
/// response that is next-in-line into the write buffer. A close-flagged
/// response, once sequenced, seals the connection: nothing further will
/// be read or written after it.
fn stage_response(c: &mut Conn, seq: u64, bytes: Vec<u8>, close: bool) {
    c.stash.insert(seq, (bytes, close));
    while let Some((bytes, close)) = c.stash.remove(&c.write_seq) {
        c.write_seq += 1;
        if c.close_after_write {
            // A response sequenced after a sealed close is dropped (it
            // can only be pipelined surplus behind a protocol error).
            continue;
        }
        c.out.extend(bytes);
        if close {
            c.close_after_write = true;
            c.read_closed = true;
        }
    }
}

/// A running prediction service behind the event-loop front end.
pub struct EventLoopServer {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    shards: Mutex<Vec<JoinHandle<()>>>,
    shared: Vec<Arc<ShardShared>>,
}

impl EventLoopServer {
    /// Bind and start `cfg.acceptors` poller shards.
    pub fn start(
        registry: Arc<ModelRegistry>,
        cfg: ServeConfig,
    ) -> std::io::Result<Arc<EventLoopServer>> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let listener = Arc::new(listener);
        let metrics = Arc::new(ServerMetrics::new());
        let batcher = Batcher::start(registry.clone(), metrics.clone(), cfg.batch.clone());
        let ctx = Arc::new(Ctx {
            registry,
            batcher,
            metrics,
            stopping: Arc::new(AtomicBool::new(false)),
        });

        let mut shards = Vec::new();
        let mut shared = Vec::new();
        for i in 0..cfg.acceptors.max(1) {
            let (wake_rx, wake_tx) = waker_pair()?;
            let sh = Arc::new(ShardShared {
                completions: Mutex::new(Vec::new()),
                waker: Waker { tx: wake_tx, pending: AtomicBool::new(false) },
            });
            shared.push(sh.clone());
            let ctx = ctx.clone();
            let listener = listener.clone();
            let deadline = cfg.request_deadline;
            shards.push(
                std::thread::Builder::new()
                    .name(format!("wdt-poll-{i}"))
                    .spawn(move || shard_loop(&listener, wake_rx, &sh, &ctx, deadline))
                    .expect("spawn poller shard"),
            );
        }
        Ok(Arc::new(EventLoopServer { addr, ctx, shards: Mutex::new(shards), shared }))
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared metrics (for embedding / tests).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.ctx.metrics
    }

    /// The model registry the server predicts with.
    pub fn registry(&self) -> &ModelRegistry {
        &self.ctx.registry
    }

    /// True once shutdown has been requested (API call or `POST /shutdown`).
    pub fn stopping(&self) -> bool {
        self.ctx.stopping.load(Ordering::SeqCst)
    }

    /// Block until shutdown is requested, polling `period`.
    pub fn wait_until_stopping(&self, period: Duration) {
        while !self.stopping() {
            std::thread::sleep(period);
        }
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish
    /// (batch workers stay alive until every shard has drained), then
    /// stop the batcher. Idempotent.
    pub fn shutdown(&self) {
        self.ctx.stopping.store(true, Ordering::SeqCst);
        for sh in &self.shared {
            sh.waker.wake();
        }
        let mut shards = self.shards.lock().expect("shard handles");
        for s in shards.drain(..) {
            let _ = s.join();
        }
        self.ctx.batcher.shutdown();
    }
}

/// Either front end, behind one handle — CLI and tests pick at runtime.
pub enum AnyServer {
    Threaded(Arc<Server>),
    EventLoop(Arc<EventLoopServer>),
}

impl AnyServer {
    /// Start the configured front end.
    pub fn start(
        registry: Arc<ModelRegistry>,
        cfg: ServeConfig,
        frontend: Frontend,
    ) -> std::io::Result<AnyServer> {
        Ok(match frontend {
            Frontend::Threaded => AnyServer::Threaded(Server::start(registry, cfg)?),
            Frontend::EventLoop => AnyServer::EventLoop(EventLoopServer::start(registry, cfg)?),
        })
    }

    pub fn addr(&self) -> SocketAddr {
        match self {
            AnyServer::Threaded(s) => s.addr(),
            AnyServer::EventLoop(s) => s.addr(),
        }
    }

    pub fn metrics(&self) -> &ServerMetrics {
        match self {
            AnyServer::Threaded(s) => s.metrics(),
            AnyServer::EventLoop(s) => s.metrics(),
        }
    }

    pub fn registry(&self) -> &ModelRegistry {
        match self {
            AnyServer::Threaded(s) => s.registry(),
            AnyServer::EventLoop(s) => s.registry(),
        }
    }

    pub fn stopping(&self) -> bool {
        match self {
            AnyServer::Threaded(s) => s.stopping(),
            AnyServer::EventLoop(s) => s.stopping(),
        }
    }

    pub fn wait_until_stopping(&self, period: Duration) {
        match self {
            AnyServer::Threaded(s) => s.wait_until_stopping(period),
            AnyServer::EventLoop(s) => s.wait_until_stopping(period),
        }
    }

    pub fn shutdown(&self) {
        match self {
            AnyServer::Threaded(s) => s.shutdown(),
            AnyServer::EventLoop(s) => s.shutdown(),
        }
    }
}

/// A connected nonblocking loopback pair: (poller's read end, writers'
/// end). `poll(2)` waits on fds, and sockets are the only fd kind std
/// hands us portably — a self-connected TCP pair stands in for the pipe
/// the vendored-dependency policy won't let us `libc::pipe` for.
fn waker_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let l = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(l.local_addr()?)?;
    let (rx, _) = l.accept()?;
    rx.set_nonblocking(true)?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    Ok((rx, tx))
}

fn shard_loop(
    listener: &TcpListener,
    mut wake_rx: TcpStream,
    shared: &Arc<ShardShared>,
    ctx: &Arc<Ctx>,
    deadline: Duration,
) {
    // Connection slab: slot reuse with a generation counter so a stale
    // completion (client hung up mid-predict, slot recycled) can never
    // reach the wrong connection.
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut next_gen: u64 = 0;
    let mut fds: Vec<PollFd> = Vec::new();
    let mut fd_slots: Vec<usize> = Vec::new();

    loop {
        let stopping = ctx.stopping.load(Ordering::SeqCst);

        fds.clear();
        fd_slots.clear();
        fds.push(PollFd { fd: wake_rx.as_raw_fd(), events: POLLIN, revents: 0 });
        let listener_polled = !stopping;
        if listener_polled {
            fds.push(PollFd { fd: listener.as_raw_fd(), events: POLLIN, revents: 0 });
        }
        let conn_base = fds.len();
        for (slot, conn) in conns.iter().enumerate() {
            let Some(c) = conn else { continue };
            let mut events = 0i16;
            if !c.out.is_empty() {
                events |= POLLOUT;
            }
            if !c.read_closed && c.in_flight < PIPELINE_MAX && c.out.len() < MAX_OUT_BUFFER {
                events |= POLLIN;
            }
            if events != 0 {
                fds.push(PollFd { fd: c.stream.as_raw_fd(), events, revents: 0 });
                fd_slots.push(slot);
            }
        }

        if poll_fds(&mut fds, TICK_MS).is_err() {
            // poll itself failing is unrecoverable for the shard; bail
            // rather than spin.
            return;
        }

        // 1. Wake channel: drain the socket, then re-arm the coalescing
        // flag *before* draining completions, so a push racing this drain
        // lands either in this batch or with a fresh poke.
        if fds[0].revents & POLLIN != 0 {
            let mut sink = [0u8; 64];
            while matches!(wake_rx.read(&mut sink), Ok(n) if n > 0) {}
        }
        shared.waker.pending.store(false, Ordering::Release);

        // 2. Connection readiness. Runs before completions/accepts so the
        // slots captured in `fd_slots` cannot have been recycled.
        for (i, slot) in fd_slots.iter().enumerate() {
            let slot = *slot;
            let revents = fds[conn_base + i].revents;
            if revents == 0 {
                continue;
            }
            if revents & (POLLERR | POLLNVAL) != 0 {
                conns[slot] = None;
                free.push(slot);
                continue;
            }
            let finished = {
                let Some(c) = conns.get_mut(slot).and_then(Option::as_mut) else { continue };
                if revents & (POLLIN | POLLHUP) != 0 {
                    read_ready(c, ctx, shared, stopping);
                }
                flush_conn(c)
            };
            if finished {
                conns[slot] = None;
                free.push(slot);
            }
        }

        // 3. Completions from batch workers.
        let done: Vec<Completion> =
            std::mem::take(&mut *shared.completions.lock().expect("completion queue"));
        for (token, seq, bytes, close) in done {
            let slot = (token & 0xFFFF_FFFF) as usize;
            let finished = {
                let Some(c) = conns.get_mut(slot).and_then(Option::as_mut) else { continue };
                if c.token != token {
                    continue; // stale: that connection died mid-predict
                }
                c.in_flight -= 1;
                stage_response(c, seq, bytes, close);
                // Pipelined requests beyond the in-flight cap may still
                // be waiting in the parser buffer.
                if !c.close_after_write {
                    process_requests(c, ctx, shared, stopping);
                }
                flush_conn(c)
            };
            if finished {
                conns[slot] = None;
                free.push(slot);
            }
        }

        // Burst boundary: every row this pass could have produced has
        // been submitted, and nothing more can arrive until a response
        // we have not yet written unblocks a client — tell the batcher
        // to stop waiting for company.
        ctx.batcher.kick();

        // 4. New connections (all shards race; losers see WouldBlock).
        if listener_polled && fds[1].revents & POLLIN != 0 {
            loop {
                match listener.accept() {
                    Ok((s, _)) => {
                        if s.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = s.set_nodelay(true);
                        let slot = free.pop().unwrap_or_else(|| {
                            conns.push(None);
                            conns.len() - 1
                        });
                        next_gen += 1;
                        conns[slot] = Some(Conn {
                            stream: s,
                            token: (next_gen << 32) | slot as u64,
                            parser: RequestParser::new(),
                            out: VecDeque::new(),
                            in_flight: 0,
                            next_seq: 0,
                            write_seq: 0,
                            stash: std::collections::BTreeMap::new(),
                            close_after_write: false,
                            read_closed: false,
                            started: None,
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }

        // 5. Deadline sweep: partial requests past their budget get 408.
        for slot in 0..conns.len() {
            let finished = {
                let Some(c) = conns.get_mut(slot).and_then(Option::as_mut) else { continue };
                if c.read_closed || !c.parser.has_partial() {
                    continue;
                }
                if c.started.is_none_or(|t0| t0.elapsed() < deadline) {
                    continue;
                }
                // The 408 takes the next sequence slot, so responses to
                // requests that did arrive in time are written first.
                c.read_closed = true;
                if let Some((status, reason, body)) = protocol_error_response(&HttpError::Deadline)
                {
                    ctx.metrics.on_response(status);
                    let seq = c.next_seq;
                    c.next_seq += 1;
                    stage_response(c, seq, render_response(status, reason, &body, true), true);
                }
                flush_conn(c)
            };
            if finished {
                conns[slot] = None;
                free.push(slot);
            }
        }

        // 6. Drain on shutdown: close idle connections; exit once none
        // remain (in-flight replies above keep their slots until
        // answered — the batcher outlives the shards).
        if stopping {
            let mut live = 0usize;
            for slot in 0..conns.len() {
                let Some(c) = conns.get(slot).and_then(Option::as_ref) else { continue };
                if c.idle() {
                    conns[slot] = None;
                    free.push(slot);
                } else {
                    live += 1;
                }
            }
            if live == 0 {
                return;
            }
        }
    }
}

/// Drain the socket into the parser, dispatching as requests complete.
fn read_ready(c: &mut Conn, ctx: &Arc<Ctx>, shared: &Arc<ShardShared>, stopping: bool) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match c.stream.read(&mut buf) {
            Ok(0) => {
                c.read_closed = true;
                return;
            }
            Ok(n) => {
                if c.started.is_none() {
                    c.started = Some(Instant::now());
                }
                c.parser.push(&buf[..n]);
                process_requests(c, ctx, shared, stopping);
                if c.read_closed
                    || c.close_after_write
                    || c.in_flight >= PIPELINE_MAX
                    || c.out.len() >= MAX_OUT_BUFFER
                {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                c.read_closed = true;
                c.close_after_write = true;
                return;
            }
        }
    }
}

/// Parse and dispatch every complete request buffered on `c`, admitting
/// up to [`PIPELINE_MAX`] concurrent predictions. Each request takes a
/// sequence number at parse time; [`stage_response`] re-sequences
/// whatever order answers arrive in.
fn process_requests(c: &mut Conn, ctx: &Arc<Ctx>, shared: &Arc<ShardShared>, stopping: bool) {
    while !c.close_after_write && !c.read_closed && c.in_flight < PIPELINE_MAX {
        match c.parser.try_take() {
            Ok(Some(req)) => {
                c.started = None;
                let close = req.close || stopping;
                let seq = c.next_seq;
                c.next_seq += 1;
                match route(&req, ctx) {
                    Routed::Done(status, reason, body) => {
                        ctx.metrics.on_response(status);
                        stage_response(
                            c,
                            seq,
                            render_response(status, reason, &body, close),
                            close,
                        );
                    }
                    Routed::Predict(row) => {
                        let started = Instant::now();
                        let token = c.token;
                        let shared = shared.clone();
                        let metrics = ctx.metrics.clone();
                        let sink = ReplySink::Callback(Box::new(move |p| {
                            let (status, reason, body) = prediction_response(&p);
                            metrics.on_response(status);
                            if status == 200 {
                                metrics.on_prediction(started.elapsed().as_micros() as u64);
                            }
                            shared.complete(
                                token,
                                seq,
                                render_response(status, reason, &body, close),
                                close,
                            );
                        }));
                        match ctx.batcher.submit_with(row, sink) {
                            Ok(()) => c.in_flight += 1,
                            Err(e) => {
                                let (status, reason, body) = submit_error_response(&e);
                                ctx.metrics.on_response(status);
                                stage_response(
                                    c,
                                    seq,
                                    render_response(status, reason, &body, close),
                                    close,
                                );
                            }
                        }
                    }
                }
                if close {
                    // `Connection: close` marks the final request; stop
                    // reading, let the sequenced answers drain.
                    c.read_closed = true;
                }
            }
            Ok(None) => {
                if c.parser.has_partial() && c.started.is_none() {
                    c.started = Some(Instant::now());
                }
                return;
            }
            Err(e) => {
                c.read_closed = true;
                if let Some((status, reason, body)) = protocol_error_response(&e) {
                    ctx.metrics.on_response(status);
                    let seq = c.next_seq;
                    c.next_seq += 1;
                    stage_response(c, seq, render_response(status, reason, &body, true), true);
                } else if c.in_flight == 0 && c.stash.is_empty() {
                    // Nothing pending and nothing to answer: drop now.
                    c.close_after_write = true;
                }
                return;
            }
        }
    }
}

/// Write as much of `out` as the socket takes right now. Returns `true`
/// when the connection is finished (drained + told to close, peer gone,
/// or write error) and its slot should be recycled.
fn flush_conn(c: &mut Conn) -> bool {
    while !c.out.is_empty() {
        let (front, _) = c.out.as_slices();
        match c.stream.write(front) {
            Ok(0) => return true,
            Ok(n) => {
                c.out.drain(..n);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    // Out buffer drained: close if asked, or if the peer can no longer
    // send anything and nothing is pending.
    c.close_after_write || (c.read_closed && c.idle())
}
