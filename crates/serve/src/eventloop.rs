//! Nonblocking readiness event-loop HTTP front end.
//!
//! The threaded front end (`server.rs`) spends one OS thread per open
//! connection; a thousand idle keep-alive clients cost a thousand parked
//! threads. Here, `acceptors` poller shards each own a set of
//! connections as plain state — a read buffer feeding the shared
//! incremental [`RequestParser`], a pending write buffer, and a few
//! flags — and multiplex them over `poll(2)` (via `shim.rs`). An idle
//! connection costs the bytes of its [`Conn`] struct and one pollfd
//! entry, nothing else; thread count is fixed at startup regardless of
//! connection count.
//!
//! ## Data flow
//!
//! Every shard polls: its *wake* socket, its listener, and its
//! connections. With `SO_REUSEPORT` (Linux) each shard owns a private
//! listener on the same port and the kernel spreads incoming connections
//! across them — no accept contention, no thundering herd. Where
//! reuseport is unavailable the shards fall back to racing one shared
//! nonblocking listener (losers see `WouldBlock`).
//!
//! Complete requests are parsed **in place**: [`RequestParser::peek`]
//! yields a frame of byte ranges into the read buffer, `routes::route`
//! reads method/path/body straight out of that window, and `/predict`
//! rows are scanned into vectors recycled through a per-shard pool. Rows
//! go to the batcher with a **plain-data** sink
//! ([`crate::batcher::ReplySink::Shard`] — a [`ShardSink`] of five words,
//! no boxed closure), so the poller never blocks on inference: the batch
//! worker pushes the raw [`Prediction`] (plus the row, for the pool) onto
//! the shard's completion queue and pokes the wake socket (a loopback
//! `TcpStream` pair — `poll` can wait on sockets only, and the wake write
//! is coalesced by an atomic flag so a busy shard is poked once per
//! wakeup, not once per response).
//!
//! ## Coalesced writes
//!
//! Responses are rendered **at emit time**, in request order, directly
//! into the connection's `VecDeque<u8>` output ring
//! ([`render_response_into`] + a reusable body scratch `String`) — a
//! pipelined burst accumulates there and [`flush_conn`] pushes both ring
//! halves with one `writev(2)` per poll wakeup. In the steady state a
//! keep-alive `/predict` request allocates nothing: buffers are reused,
//! the version string is a shared `Arc<str>`, and out-of-order stashing
//! (the only allocating path) happens only when pipelined answers finish
//! out of sequence.
//!
//! ## Timeouts
//!
//! Two distinct clocks, same semantics as the blocking front end:
//! the 200 ms poll tick bounds how stale the shutdown flag and deadline
//! sweep can be (an *idle* connection just keeps sitting there, free);
//! the per-request deadline starts at a request's first byte and answers
//! **408** if the request is still incomplete when it expires. Slow
//! clients who keep trickling bytes inside the deadline are served
//! normally — the bug class this front end was built not to have.

use crate::batcher::{Batcher, Prediction, ReplySink};
use crate::http::{render_response_into, HttpError, RequestParser};
use crate::metrics::ServerMetrics;
use crate::registry::ModelRegistry;
use crate::routes::{
    explain_body, prediction_body, protocol_error_response, route, submit_error_response, Body,
    Ctx, Routed, BODY_NON_FINITE,
};
use crate::server::{Frontend, ServeConfig, Server};
use crate::shim::{poll_fds, writev_fds, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poll timeout: how often a shard re-checks the stopping flag and
/// sweeps request deadlines even with no socket activity.
const TICK_MS: i32 = 200;

/// Most predictions one connection may have in the batcher at once.
/// HTTP/1.1 pipelining lets a client send many requests back-to-back;
/// admitting them concurrently (answers are re-sequenced, see [`stage`])
/// turns a pipelined burst into one inference batch and one writev-sized
/// response flush. The cap bounds per-connection memory; anything deeper
/// waits in the parser buffer.
const PIPELINE_MAX: usize = 128;

/// Stop reading from a connection whose client isn't draining responses.
const MAX_OUT_BUFFER: usize = 256 * 1024;

/// Most row vectors a shard keeps for reuse. Enough that a busy shard
/// never allocates rows in the steady state, small enough that a burst
/// doesn't pin memory forever.
const ROW_POOL_MAX: usize = 256;

/// A finished prediction bound for a connection, raw: the shard renders
/// it at emit time into the connection's output ring. Carrying the row
/// home lets the shard recycle it through its pool.
struct Completion {
    token: u64,
    seq: u64,
    pred: Prediction,
    close: bool,
    started: Instant,
    row: Vec<f64>,
}

/// Plain-data completion address a `/predict` submission carries into the
/// batcher: a shared-state handle and four words, no boxed closure,
/// nothing heap-allocated per request. The batch worker calls
/// [`ShardSink::deliver`] exactly once.
pub struct ShardSink {
    shared: Arc<ShardShared>,
    token: u64,
    seq: u64,
    close: bool,
    started: Instant,
}

impl ShardSink {
    /// Hand a finished prediction (and its row, for the pool) back to the
    /// owning shard.
    pub(crate) fn deliver(self, pred: Prediction, row: Vec<f64>) {
        let ShardSink { shared, token, seq, close, started } = self;
        shared.complete(Completion { token, seq, pred, close, started, row });
    }
}

/// Cross-thread doorbell for one shard: batch workers push completions
/// and poke the wake socket; the atomic coalesces pokes while the shard
/// is busy.
struct Waker {
    tx: TcpStream,
    pending: AtomicBool,
}

impl Waker {
    fn wake(&self) {
        if !self.pending.swap(true, Ordering::AcqRel) {
            // The shard drains this socket every loop; a full buffer
            // means a wakeup is already guaranteed.
            let _ = (&self.tx).write(&[1u8]);
        }
    }
}

/// State a shard shares with batch workers.
struct ShardShared {
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl ShardShared {
    fn complete(&self, c: Completion) {
        self.completions.lock().expect("completion queue").push(c);
        self.waker.wake();
    }
}

/// A response waiting for its turn on the wire, pre-rendering: either a
/// routed status/body or a raw prediction. Rendering happens in [`emit`],
/// in sequence order, straight into the connection's output ring.
enum Pending {
    /// status, reason, body, close-after.
    Raw(u16, &'static str, Body, bool),
    /// prediction, close-after, request start (for the latency histogram).
    Predict(Prediction, bool, Instant),
}

/// Per-connection state machine. A few hundred bytes plus buffers; this
/// is the whole cost of an idle keep-alive connection.
struct Conn {
    stream: TcpStream,
    token: u64,
    parser: RequestParser,
    /// Bytes queued to write; a short write drains from the front and
    /// resumes on the next `POLLOUT`.
    out: VecDeque<u8>,
    /// Predictions in flight in the batcher for this connection.
    in_flight: usize,
    /// Sequence number the next parsed request will be assigned.
    next_seq: u64,
    /// Sequence number the next response emitted into `out` must have —
    /// pipelined answers go on the wire in request order, whatever order
    /// inference finishes in.
    write_seq: u64,
    /// Finished responses waiting for their turn on the wire. Empty in
    /// the in-order steady state (no node churn, no allocation).
    stash: std::collections::BTreeMap<u64, Pending>,
    /// Close once `out` drains (set when a close-flagged response is
    /// emitted into `out`).
    close_after_write: bool,
    /// Peer sent FIN (or sent `Connection: close`); it may still be
    /// reading our side (half-close), so pending responses still flush.
    read_closed: bool,
    /// First byte of the current partial request (deadline clock).
    started: Option<Instant>,
}

impl Conn {
    /// True when nothing is pending in either direction: safe to drop on
    /// shutdown or after a read-side close.
    fn idle(&self) -> bool {
        // A partial request keeps the connection busy only while the
        // peer can still finish it; after FIN those bytes are garbage
        // that must not pin the slot (or hang the shutdown drain).
        self.out.is_empty()
            && self.in_flight == 0
            && self.stash.is_empty()
            && (self.read_closed || !self.parser.has_partial())
    }
}

/// Render one response into the connection's output ring. A response
/// emitted after a close-flagged one sealed the connection is dropped
/// (it can only be pipelined surplus behind a protocol error); its
/// prediction metrics are skipped too — it never hits the wire.
fn emit(c: &mut Conn, pending: Pending, ctx: &Ctx, scratch: &mut ShardScratch) {
    if c.close_after_write {
        // Contribution buffers of dropped surplus responses still go
        // back to the pool.
        if let Pending::Predict(mut p, _, _) = pending {
            if let Some(e) = p.explain.take() {
                give_back_contribs(&mut scratch.contrib_pool, e.contributions);
            }
        }
        return;
    }
    let close = match pending {
        Pending::Raw(status, reason, b, close) => {
            render_response_into(&mut c.out, status, reason, b.as_bytes(), close);
            close
        }
        Pending::Predict(mut p, close, started) => {
            if p.rate.is_finite() {
                scratch.body.clear();
                if p.explain.is_some() {
                    explain_body(&p, ctx.explain_top, &mut scratch.body);
                } else {
                    prediction_body(&p, &mut scratch.body);
                }
                render_response_into(&mut c.out, 200, "OK", scratch.body.as_bytes(), close);
                ctx.metrics.on_response(200);
                ctx.metrics.on_prediction(started.elapsed().as_micros() as u64);
            } else {
                render_response_into(
                    &mut c.out,
                    500,
                    "Internal Server Error",
                    BODY_NON_FINITE.as_bytes(),
                    close,
                );
                ctx.metrics.on_response(500);
            }
            if let Some(e) = p.explain.take() {
                give_back_contribs(&mut scratch.contrib_pool, e.contributions);
            }
            close
        }
    };
    if close {
        c.close_after_write = true;
        c.read_closed = true;
    }
}

/// File a finished response under its sequence number; if it is
/// next-in-line, emit it — and everything it unblocks — into the write
/// buffer. The common in-order case never touches the stash.
fn stage(c: &mut Conn, seq: u64, pending: Pending, ctx: &Ctx, scratch: &mut ShardScratch) {
    if seq != c.write_seq {
        c.stash.insert(seq, pending);
        return;
    }
    emit(c, pending, ctx, scratch);
    c.write_seq += 1;
    while let Some(p) = c.stash.remove(&c.write_seq) {
        emit(c, p, ctx, scratch);
        c.write_seq += 1;
    }
}

/// A running prediction service behind the event-loop front end.
pub struct EventLoopServer {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    shards: Mutex<Vec<JoinHandle<()>>>,
    shared: Vec<Arc<ShardShared>>,
    reuseport: bool,
}

impl EventLoopServer {
    /// Bind and start `cfg.acceptors` poller shards. Each shard gets its
    /// own `SO_REUSEPORT` listener where the platform supports it; the
    /// fallback is one shared nonblocking listener all shards race.
    pub fn start(
        registry: Arc<ModelRegistry>,
        cfg: ServeConfig,
    ) -> std::io::Result<Arc<EventLoopServer>> {
        let n_shards = cfg.acceptors.max(1);
        let (listeners, reuseport) = bind_listeners(cfg.port, n_shards)?;
        let addr = listeners[0].local_addr()?;
        let metrics = Arc::new(ServerMetrics::new());
        let batcher = Batcher::start(registry.clone(), metrics.clone(), cfg.batch.clone());
        let ctx = Arc::new(Ctx {
            registry,
            batcher,
            metrics,
            stopping: Arc::new(AtomicBool::new(false)),
            explain_top: cfg.explain_top,
        });

        let mut shards = Vec::new();
        let mut shared = Vec::new();
        for (i, listener) in listeners.into_iter().enumerate() {
            let (wake_rx, wake_tx) = waker_pair()?;
            let sh = Arc::new(ShardShared {
                completions: Mutex::new(Vec::new()),
                waker: Waker { tx: wake_tx, pending: AtomicBool::new(false) },
            });
            shared.push(sh.clone());
            let ctx = ctx.clone();
            let deadline = cfg.request_deadline;
            shards.push(
                std::thread::Builder::new()
                    .name(format!("wdt-poll-{i}"))
                    .spawn(move || shard_loop(&listener, wake_rx, &sh, &ctx, deadline))
                    .expect("spawn poller shard"),
            );
        }
        Ok(Arc::new(EventLoopServer { addr, ctx, shards: Mutex::new(shards), shared, reuseport }))
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True when each shard owns a private `SO_REUSEPORT` listener
    /// (Linux); false on the shared-listener fallback.
    pub fn reuseport(&self) -> bool {
        self.reuseport
    }

    /// Shared metrics (for embedding / tests).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.ctx.metrics
    }

    /// The model registry the server predicts with.
    pub fn registry(&self) -> &ModelRegistry {
        &self.ctx.registry
    }

    /// True once shutdown has been requested (API call or `POST /shutdown`).
    pub fn stopping(&self) -> bool {
        self.ctx.stopping.load(Ordering::SeqCst)
    }

    /// Block until shutdown is requested, polling `period`.
    pub fn wait_until_stopping(&self, period: Duration) {
        while !self.stopping() {
            std::thread::sleep(period);
        }
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish
    /// (batch workers stay alive until every shard has drained), then
    /// stop the batcher. Idempotent.
    pub fn shutdown(&self) {
        self.ctx.stopping.store(true, Ordering::SeqCst);
        for sh in &self.shared {
            sh.waker.wake();
        }
        let mut shards = self.shards.lock().expect("shard handles");
        for s in shards.drain(..) {
            let _ = s.join();
        }
        self.ctx.batcher.shutdown();
    }
}

/// One listener per shard via `SO_REUSEPORT` when the platform allows,
/// else one shared listener cloned into every slot. The first listener
/// resolves an ephemeral `port: 0`; siblings bind the resolved port.
fn bind_listeners(port: u16, n: usize) -> std::io::Result<(Vec<Arc<TcpListener>>, bool)> {
    let attempt = (|| -> std::io::Result<Vec<Arc<TcpListener>>> {
        let first = crate::shim::reuseport_listener(port)?;
        first.set_nonblocking(true)?;
        let bound = first.local_addr()?.port();
        let mut ls = vec![Arc::new(first)];
        for _ in 1..n {
            let l = crate::shim::reuseport_listener(bound)?;
            l.set_nonblocking(true)?;
            ls.push(Arc::new(l));
        }
        Ok(ls)
    })();
    match attempt {
        Ok(ls) => Ok((ls, true)),
        Err(_) => {
            let l = TcpListener::bind(("127.0.0.1", port))?;
            l.set_nonblocking(true)?;
            let l = Arc::new(l);
            Ok((vec![l; n], false))
        }
    }
}

/// Either front end, behind one handle — CLI and tests pick at runtime.
pub enum AnyServer {
    Threaded(Arc<Server>),
    EventLoop(Arc<EventLoopServer>),
}

impl AnyServer {
    /// Start the configured front end.
    pub fn start(
        registry: Arc<ModelRegistry>,
        cfg: ServeConfig,
        frontend: Frontend,
    ) -> std::io::Result<AnyServer> {
        Ok(match frontend {
            Frontend::Threaded => AnyServer::Threaded(Server::start(registry, cfg)?),
            Frontend::EventLoop => AnyServer::EventLoop(EventLoopServer::start(registry, cfg)?),
        })
    }

    pub fn addr(&self) -> SocketAddr {
        match self {
            AnyServer::Threaded(s) => s.addr(),
            AnyServer::EventLoop(s) => s.addr(),
        }
    }

    pub fn metrics(&self) -> &ServerMetrics {
        match self {
            AnyServer::Threaded(s) => s.metrics(),
            AnyServer::EventLoop(s) => s.metrics(),
        }
    }

    pub fn registry(&self) -> &ModelRegistry {
        match self {
            AnyServer::Threaded(s) => s.registry(),
            AnyServer::EventLoop(s) => s.registry(),
        }
    }

    pub fn stopping(&self) -> bool {
        match self {
            AnyServer::Threaded(s) => s.stopping(),
            AnyServer::EventLoop(s) => s.stopping(),
        }
    }

    pub fn wait_until_stopping(&self, period: Duration) {
        match self {
            AnyServer::Threaded(s) => s.wait_until_stopping(period),
            AnyServer::EventLoop(s) => s.wait_until_stopping(period),
        }
    }

    pub fn shutdown(&self) {
        match self {
            AnyServer::Threaded(s) => s.shutdown(),
            AnyServer::EventLoop(s) => s.shutdown(),
        }
    }
}

/// A connected nonblocking loopback pair: (poller's read end, writers'
/// end). `poll(2)` waits on fds, and sockets are the only fd kind std
/// hands us portably — a self-connected TCP pair stands in for the pipe
/// the vendored-dependency policy won't let us `libc::pipe` for.
fn waker_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let l = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(l.local_addr()?)?;
    let (rx, _) = l.accept()?;
    rx.set_nonblocking(true)?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    Ok((rx, tx))
}

/// Everything a shard reuses across requests: the response-body scratch,
/// the row-vector pool, and the double buffer the completion queue swaps
/// into. All capacity, no steady-state allocation.
struct ShardScratch {
    body: String,
    row_pool: Vec<Vec<f64>>,
    /// Contribution-vector pool for `/explain`: buffers travel to the
    /// batch worker inside the job and come home with the completion.
    contrib_pool: Vec<Vec<f64>>,
    done: Vec<Completion>,
}

fn shard_loop(
    listener: &TcpListener,
    mut wake_rx: TcpStream,
    shared: &Arc<ShardShared>,
    ctx: &Arc<Ctx>,
    deadline: Duration,
) {
    // Connection slab: slot reuse with a generation counter so a stale
    // completion (client hung up mid-predict, slot recycled) can never
    // reach the wrong connection.
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut next_gen: u64 = 0;
    let mut fds: Vec<PollFd> = Vec::new();
    let mut fd_slots: Vec<usize> = Vec::new();
    let mut scratch = ShardScratch {
        body: String::with_capacity(128),
        row_pool: Vec::new(),
        contrib_pool: Vec::new(),
        done: Vec::new(),
    };

    loop {
        let stopping = ctx.stopping.load(Ordering::SeqCst);

        fds.clear();
        fd_slots.clear();
        fds.push(PollFd { fd: wake_rx.as_raw_fd(), events: POLLIN, revents: 0 });
        let listener_polled = !stopping;
        if listener_polled {
            fds.push(PollFd { fd: listener.as_raw_fd(), events: POLLIN, revents: 0 });
        }
        let conn_base = fds.len();
        for (slot, conn) in conns.iter().enumerate() {
            let Some(c) = conn else { continue };
            let mut events = 0i16;
            if !c.out.is_empty() {
                events |= POLLOUT;
            }
            if !c.read_closed && c.in_flight < PIPELINE_MAX && c.out.len() < MAX_OUT_BUFFER {
                events |= POLLIN;
            }
            if events != 0 {
                fds.push(PollFd { fd: c.stream.as_raw_fd(), events, revents: 0 });
                fd_slots.push(slot);
            }
        }

        if poll_fds(&mut fds, TICK_MS).is_err() {
            // poll itself failing is unrecoverable for the shard; bail
            // rather than spin.
            return;
        }

        // 1. Wake channel: drain the socket, then re-arm the coalescing
        // flag *before* draining completions, so a push racing this drain
        // lands either in this batch or with a fresh poke.
        if fds[0].revents & POLLIN != 0 {
            let mut sink = [0u8; 64];
            while matches!(wake_rx.read(&mut sink), Ok(n) if n > 0) {}
        }
        shared.waker.pending.store(false, Ordering::Release);

        // 2. Connection readiness. Runs before completions/accepts so the
        // slots captured in `fd_slots` cannot have been recycled.
        for (i, slot) in fd_slots.iter().enumerate() {
            let slot = *slot;
            let revents = fds[conn_base + i].revents;
            if revents == 0 {
                continue;
            }
            if revents & (POLLERR | POLLNVAL) != 0 {
                conns[slot] = None;
                free.push(slot);
                continue;
            }
            let finished = {
                let Some(c) = conns.get_mut(slot).and_then(Option::as_mut) else { continue };
                if revents & (POLLIN | POLLHUP) != 0 {
                    read_ready(c, ctx, shared, stopping, &mut scratch);
                }
                flush_conn(c)
            };
            if finished {
                conns[slot] = None;
                free.push(slot);
            }
        }

        // 3. Completions from batch workers, swapped out under the lock
        // into a reused buffer (a `take` would allocate a fresh vector
        // every drain; the swap keeps both buffers' capacity warm).
        {
            let mut q = shared.completions.lock().expect("completion queue");
            std::mem::swap(&mut *q, &mut scratch.done);
        }
        for i in 0..scratch.done.len() {
            let Completion { token, seq, pred, close, started, row } = {
                let comp = &mut scratch.done[i];
                Completion {
                    token: comp.token,
                    seq: comp.seq,
                    pred: Prediction {
                        rate: comp.pred.rate,
                        version: comp.pred.version.clone(),
                        batch_size: comp.pred.batch_size,
                        explain: comp.pred.explain.take(),
                    },
                    close: comp.close,
                    started: comp.started,
                    row: std::mem::take(&mut comp.row),
                }
            };
            give_back_row(&mut scratch.row_pool, row);
            let slot = (token & 0xFFFF_FFFF) as usize;
            let finished = {
                let Some(c) = conns.get_mut(slot).and_then(Option::as_mut) else {
                    if let Some(e) = pred.explain {
                        give_back_contribs(&mut scratch.contrib_pool, e.contributions);
                    }
                    continue;
                };
                if c.token != token {
                    // Stale: that connection died mid-predict. Keep the
                    // contribution buffer anyway.
                    if let Some(e) = pred.explain {
                        give_back_contribs(&mut scratch.contrib_pool, e.contributions);
                    }
                    continue;
                }
                c.in_flight -= 1;
                stage(c, seq, Pending::Predict(pred, close, started), ctx, &mut scratch);
                // Pipelined requests beyond the in-flight cap may still
                // be waiting in the parser buffer.
                if !c.close_after_write {
                    process_requests(c, ctx, shared, stopping, &mut scratch);
                }
                flush_conn(c)
            };
            if finished {
                conns[slot] = None;
                free.push(slot);
            }
        }
        scratch.done.clear();

        // Burst boundary: every row this pass could have produced has
        // been submitted, and nothing more can arrive until a response
        // we have not yet written unblocks a client — tell the batcher
        // to stop waiting for company.
        ctx.batcher.kick();

        // 4. New connections (with reuseport the kernel steers each
        // connection to exactly one shard; on the shared-listener
        // fallback all shards race and losers see WouldBlock).
        if listener_polled && fds[1].revents & POLLIN != 0 {
            loop {
                match listener.accept() {
                    Ok((s, _)) => {
                        if s.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = s.set_nodelay(true);
                        let slot = free.pop().unwrap_or_else(|| {
                            conns.push(None);
                            conns.len() - 1
                        });
                        next_gen += 1;
                        conns[slot] = Some(Conn {
                            stream: s,
                            token: (next_gen << 32) | slot as u64,
                            parser: RequestParser::new(),
                            out: VecDeque::new(),
                            in_flight: 0,
                            next_seq: 0,
                            write_seq: 0,
                            stash: std::collections::BTreeMap::new(),
                            close_after_write: false,
                            read_closed: false,
                            started: None,
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }

        // 5. Deadline sweep: partial requests past their budget get 408.
        for slot in 0..conns.len() {
            let finished = {
                let Some(c) = conns.get_mut(slot).and_then(Option::as_mut) else { continue };
                if c.read_closed || !c.parser.has_partial() {
                    continue;
                }
                if c.started.is_none_or(|t0| t0.elapsed() < deadline) {
                    continue;
                }
                // The 408 takes the next sequence slot, so responses to
                // requests that did arrive in time are written first.
                c.read_closed = true;
                if let Some((status, reason, body)) = protocol_error_response(&HttpError::Deadline)
                {
                    ctx.metrics.on_response(status);
                    let seq = c.next_seq;
                    c.next_seq += 1;
                    stage(c, seq, Pending::Raw(status, reason, body, true), ctx, &mut scratch);
                }
                flush_conn(c)
            };
            if finished {
                conns[slot] = None;
                free.push(slot);
            }
        }

        // 6. Drain on shutdown: close idle connections; exit once none
        // remain (in-flight replies above keep their slots until
        // answered — the batcher outlives the shards).
        if stopping {
            let mut live = 0usize;
            for slot in 0..conns.len() {
                let Some(c) = conns.get(slot).and_then(Option::as_ref) else { continue };
                if c.idle() {
                    conns[slot] = None;
                    free.push(slot);
                } else {
                    live += 1;
                }
            }
            if live == 0 {
                return;
            }
        }
    }
}

/// Return a row vector to the pool (bounded; surplus just drops).
fn give_back_row(pool: &mut Vec<Vec<f64>>, row: Vec<f64>) {
    if pool.len() < ROW_POOL_MAX {
        pool.push(row);
    }
}

/// Return a contribution vector to the pool (bounded; surplus drops).
fn give_back_contribs(pool: &mut Vec<Vec<f64>>, mut contribs: Vec<f64>) {
    if pool.len() < ROW_POOL_MAX {
        contribs.clear();
        pool.push(contribs);
    }
}

/// Drain the socket into the parser, dispatching as requests complete.
fn read_ready(
    c: &mut Conn,
    ctx: &Arc<Ctx>,
    shared: &Arc<ShardShared>,
    stopping: bool,
    scratch: &mut ShardScratch,
) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match c.stream.read(&mut buf) {
            Ok(0) => {
                c.read_closed = true;
                return;
            }
            Ok(n) => {
                if c.started.is_none() {
                    c.started = Some(Instant::now());
                }
                c.parser.push(&buf[..n]);
                process_requests(c, ctx, shared, stopping, scratch);
                if c.read_closed
                    || c.close_after_write
                    || c.in_flight >= PIPELINE_MAX
                    || c.out.len() >= MAX_OUT_BUFFER
                {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                c.read_closed = true;
                c.close_after_write = true;
                return;
            }
        }
    }
}

/// Parse and dispatch every complete request buffered on `c`, admitting
/// up to [`PIPELINE_MAX`] concurrent predictions. Each request takes a
/// sequence number at parse time; [`stage`] re-sequences whatever order
/// answers arrive in. Requests are parsed in place:
/// [`RequestParser::peek`] yields byte ranges, `route` reads them out of
/// the parser window, and only then is the frame consumed.
fn process_requests(
    c: &mut Conn,
    ctx: &Arc<Ctx>,
    shared: &Arc<ShardShared>,
    stopping: bool,
    scratch: &mut ShardScratch,
) {
    while !c.close_after_write && !c.read_closed && c.in_flight < PIPELINE_MAX {
        match c.parser.peek() {
            Ok(Some(frame)) => {
                c.started = None;
                let close = frame.close || stopping;
                let seq = c.next_seq;
                c.next_seq += 1;
                let mut row = scratch.row_pool.pop().unwrap_or_default();
                let routed = {
                    let win = c.parser.window();
                    route(
                        frame.method,
                        frame.method_bytes(win),
                        frame.path_bytes(win),
                        frame.body(win),
                        ctx,
                        &mut row,
                    )
                };
                c.parser.consume(frame.wire_len());
                match routed {
                    Routed::Done(status, reason, body) => {
                        give_back_row(&mut scratch.row_pool, row);
                        ctx.metrics.on_response(status);
                        stage(c, seq, Pending::Raw(status, reason, body, close), ctx, scratch);
                    }
                    Routed::Predict | Routed::Explain => {
                        let explain = match routed {
                            Routed::Explain => Some(scratch.contrib_pool.pop().unwrap_or_default()),
                            _ => None,
                        };
                        let sink = ReplySink::Shard(ShardSink {
                            shared: shared.clone(),
                            token: c.token,
                            seq,
                            close,
                            started: Instant::now(),
                        });
                        match ctx.batcher.submit_with(row, explain, sink) {
                            Ok(()) => c.in_flight += 1,
                            Err(e) => {
                                let (status, reason, body) = submit_error_response(&e);
                                ctx.metrics.on_response(status);
                                stage(
                                    c,
                                    seq,
                                    Pending::Raw(status, reason, body, close),
                                    ctx,
                                    scratch,
                                );
                            }
                        }
                    }
                }
                if close {
                    // `Connection: close` marks the final request; stop
                    // reading, let the sequenced answers drain.
                    c.read_closed = true;
                }
            }
            Ok(None) => {
                if c.parser.has_partial() && c.started.is_none() {
                    c.started = Some(Instant::now());
                }
                return;
            }
            Err(e) => {
                c.read_closed = true;
                if let Some((status, reason, body)) = protocol_error_response(&e) {
                    ctx.metrics.on_response(status);
                    let seq = c.next_seq;
                    c.next_seq += 1;
                    stage(c, seq, Pending::Raw(status, reason, body, true), ctx, scratch);
                } else if c.in_flight == 0 && c.stash.is_empty() {
                    // Nothing pending and nothing to answer: drop now.
                    c.close_after_write = true;
                }
                return;
            }
        }
    }
}

/// Write as much of `out` as the socket takes right now — both halves of
/// the ring in one `writev(2)`, so a pipelined burst of responses costs
/// one syscall per wakeup instead of one per response. Returns `true`
/// when the connection is finished (drained + told to close, peer gone,
/// or write error) and its slot should be recycled.
fn flush_conn(c: &mut Conn) -> bool {
    while !c.out.is_empty() {
        let (front, back) = c.out.as_slices();
        match writev_fds(c.stream.as_raw_fd(), front, back) {
            Ok(0) => return true,
            Ok(n) => {
                c.out.drain(..n);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    // Out buffer drained: close if asked, or if the peer can no longer
    // send anything and nothing is pending.
    c.close_after_write || (c.read_closed && c.idle())
}
