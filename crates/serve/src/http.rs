//! A deliberately small HTTP/1.1 implementation over `std::net`.
//!
//! Enough of the protocol for a loopback/intranet prediction service and
//! its load generator: request line + headers + `Content-Length` bodies,
//! keep-alive (the HTTP/1.1 default) with `Connection: close` honored,
//! and hard limits on header and body size so a hostile peer cannot make
//! the server buffer unboundedly. No chunked encoding, no TLS — artifacts
//! of the vendored-dependency policy, documented in DESIGN.md.
//!
//! The parsing core is the **incremental** [`RequestParser`]: push
//! whatever bytes the socket produced, ask whether a complete request is
//! buffered. Both front ends share it — the blocking worker loop feeds it
//! from timed reads in [`read_request`], the event loop feeds it from
//! readiness-driven nonblocking reads — so slow peers are handled
//! identically everywhere: a request may arrive one byte at a time across
//! any number of timeout ticks, and is only abandoned (with a 408) when
//! the *per-request deadline* expires, never because a single read timed
//! out mid-request.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Longest accepted request line + headers, bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body, bytes. Prediction bodies are a few
/// hundred bytes; this leaves room for batched client extensions.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Socket-timeout tick used by the blocking front end: how often a quiet
/// connection wakes to observe shutdown. NOT a request deadline — a
/// request may straddle any number of ticks.
pub const IDLE_TICK: Duration = Duration::from_millis(200);
/// Default wall-clock budget for one request to arrive in full once its
/// first byte has been seen. Expiry answers 408 Request Timeout.
pub const DEFAULT_REQUEST_DEADLINE: Duration = Duration::from_secs(5);

/// A parsed request with owned fields — the convenient form used by the
/// blocking front end and tests. The event loop's hot path uses
/// [`Frame`] instead, which borrows from the parser's buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path component, e.g. `/predict`.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Client asked to close after this exchange.
    pub close: bool,
}

/// Request method, pre-classified so routing does not compare strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    Get,
    Post,
    /// Anything else — still routable (to a 404) without owning the name.
    Other,
}

impl Method {
    pub fn classify(bytes: &[u8]) -> Self {
        match bytes {
            b"GET" => Method::Get,
            b"POST" => Method::Post,
            _ => Method::Other,
        }
    }
}

/// A complete request described as byte ranges into the parser's window
/// (see [`RequestParser::window`]) — no `String` per method/path, no
/// copied body. The frame stays valid until [`RequestParser::consume`]
/// or the next [`RequestParser::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Classified method (exact bytes via [`Frame::method_bytes`]).
    pub method: Method,
    method_range: (usize, usize),
    path_range: (usize, usize),
    head_len: usize,
    body_len: usize,
    /// Client asked to close after this exchange.
    pub close: bool,
}

impl Frame {
    /// Total bytes this request occupies on the wire (head + body);
    /// pass to [`RequestParser::consume`] once routed.
    pub fn wire_len(&self) -> usize {
        self.head_len + self.body_len
    }

    /// Method bytes within `window` (always valid UTF-8 — the head is
    /// checked before a frame is produced).
    pub fn method_bytes<'a>(&self, window: &'a [u8]) -> &'a [u8] {
        &window[self.method_range.0..self.method_range.1]
    }

    /// Path bytes within `window`.
    pub fn path_bytes<'a>(&self, window: &'a [u8]) -> &'a [u8] {
        &window[self.path_range.0..self.path_range.1]
    }

    /// Body bytes within `window`.
    pub fn body<'a>(&self, window: &'a [u8]) -> &'a [u8] {
        &window[self.head_len..self.head_len + self.body_len]
    }
}

/// Protocol-level failure while reading a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Read timeout fired while the connection was quiet (no request in
    /// progress). Keep-alive servers use socket timeouts so idle
    /// connections wake periodically to observe shutdown; this variant
    /// means "nothing happened", not a protocol error.
    Idle,
    /// The per-request deadline expired with a request still partially
    /// delivered. Answered with 408 Request Timeout.
    Deadline,
    /// Peer closed before a complete request (clean EOF between
    /// requests is reported as `Ok(None)` instead).
    Truncated,
    /// Malformed request line or header.
    Malformed(String),
    /// Head or body over the configured limits.
    TooLarge(&'static str),
    /// Underlying socket error.
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Idle => write!(f, "idle timeout"),
            HttpError::Deadline => write!(f, "request deadline expired"),
            HttpError::Truncated => write!(f, "connection closed mid-request"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(what) => write!(f, "{what} too large"),
            HttpError::Io(m) => write!(f, "io: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Consumed prefix past which [`RequestParser::push`] compacts the
/// buffer (memmoves the unconsumed tail to the front) instead of letting
/// it grow. Small enough that the memmove is cheap, large enough that a
/// burst of pipelined requests is consumed with pure cursor bumps.
const COMPACT_AT: usize = 4096;

/// Incremental request parser: a byte buffer plus "is a complete request
/// buffered yet?". Feed it with [`RequestParser::push`] from any read
/// strategy (blocking with timeouts, nonblocking readiness); it never
/// touches a socket itself.
///
/// Consumption is cursor-based: [`RequestParser::peek`] describes the
/// frontmost complete request as byte ranges ([`Frame`]) without copying
/// anything, and [`RequestParser::consume`] advances past it — the old
/// `Vec::drain` per request (an O(buffered-bytes) memmove under
/// pipelining) is gone. [`RequestParser::try_take`] wraps the pair for
/// callers that want owned [`Request`]s.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    pos: usize,
}

impl RequestParser {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append bytes read off the wire.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.pos >= COMPACT_AT {
            self.buf.copy_within(self.pos.., 0);
            let tail = self.buf.len() - self.pos;
            self.buf.truncate(tail);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes of an incomplete request are sitting in the buffer — i.e. a
    /// request has *started* (deadline applies) but has not finished.
    pub fn has_partial(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// The unconsumed bytes. [`Frame`] ranges index into this slice.
    pub fn window(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    /// Describe the frontmost request if fully delivered, without
    /// copying or consuming anything.
    ///
    /// `Ok(None)` means "need more bytes". Errors are terminal for the
    /// connection: the buffer cannot be re-synchronized after a malformed
    /// or oversized head.
    pub fn peek(&self) -> Result<Option<Frame>, HttpError> {
        let window = self.window();
        let Some(head_len) = find_head_end(window) else {
            if window.len() > MAX_HEAD_BYTES {
                return Err(HttpError::TooLarge("header"));
            }
            return Ok(None);
        };
        if head_len > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge("header"));
        }
        let frame = parse_head(window, head_len)?;
        if window.len() < frame.wire_len() {
            return Ok(None);
        }
        Ok(Some(frame))
    }

    /// Advance past `n` consumed bytes (a routed frame's
    /// [`Frame::wire_len`]), invalidating outstanding frames.
    pub fn consume(&mut self, n: usize) {
        self.pos += n;
        debug_assert!(self.pos <= self.buf.len());
        if self.pos >= self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
    }

    /// Take one complete request off the front of the buffer if fully
    /// delivered, leaving any pipelined surplus for the next call.
    pub fn try_take(&mut self) -> Result<Option<Request>, HttpError> {
        let Some(frame) = self.peek()? else {
            return Ok(None);
        };
        let window = self.window();
        let req = Request {
            method: String::from_utf8_lossy(frame.method_bytes(window)).into_owned(),
            path: String::from_utf8_lossy(frame.path_bytes(window)).into_owned(),
            body: frame.body(window).to_vec(),
            close: frame.close,
        };
        self.consume(frame.wire_len());
        Ok(Some(req))
    }
}

/// Find the end of the head (the index one past the blank line), if the
/// blank line has arrived. Accepts both CRLF and bare-LF line endings.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match buf.get(i + 1..i + 3) {
                Some([b'\r', b'\n']) => return Some(i + 3),
                Some([b'\n', _]) => return Some(i + 2),
                _ => {}
            }
            if buf.get(i + 1) == Some(&b'\n') {
                return Some(i + 2);
            }
        }
        i += 1;
    }
    None
}

/// Parse request line + headers of `window[..head_len]` into a
/// [`Frame`]. Allocation-free on success: method and path are recorded
/// as byte ranges (offsets into `window`), header names are matched with
/// `eq_ignore_ascii_case` instead of lowercased copies, and only the
/// error paths build `String`s.
fn parse_head(window: &[u8], head_len: usize) -> Result<Frame, HttpError> {
    let head = std::str::from_utf8(&window[..head_len])
        .map_err(|_| HttpError::Malformed("head is not utf-8".into()))?;
    let base = head.as_ptr() as usize;
    // Byte offset of a head substring within `window`.
    let range_of = |s: &str| {
        let start = s.as_ptr() as usize - base;
        (start, start + s.len())
    };
    let mut lines = head.lines();
    let line = lines.next().unwrap_or_default();
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default();
    let path = parts.next().unwrap_or_default();
    let version = parts.next().unwrap_or_default();
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("request line {:?}", line.trim_end())));
    }

    let mut content_length: Option<usize> = None;
    let mut close = version == "HTTP/1.0";
    for line in lines {
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(HttpError::Malformed(format!("header {trimmed:?}")));
        };
        let name = name.trim();
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            // Strict digits only: `usize::parse` would accept `+7`,
            // and a lenient parse here invites smuggling mismatches
            // with any stricter intermediary.
            if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                return Err(HttpError::Malformed(format!("content-length {value:?}")));
            }
            let n = value
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("content-length {value:?}")))?;
            // Duplicate headers must agree; conflicting duplicates are
            // the classic request-smuggling vector.
            if content_length.is_some_and(|prev| prev != n) {
                return Err(HttpError::Malformed("conflicting content-length".into()));
            }
            if n > MAX_BODY_BYTES {
                return Err(HttpError::TooLarge("body"));
            }
            content_length = Some(n);
        } else if name.eq_ignore_ascii_case("connection") {
            // Token-wise match: `Connection` is a comma-separated
            // token list, and substring matching would treat e.g.
            // `not-close` as a close request.
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    close = true;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    close = false;
                }
            }
        }
    }
    Ok(Frame {
        method: Method::classify(method.as_bytes()),
        method_range: range_of(method),
        path_range: range_of(path),
        head_len,
        body_len: content_length.unwrap_or(0),
        close,
    })
}

/// Read one request off a blocking keep-alive connection whose socket
/// read timeout is [`IDLE_TICK`].
///
/// Returns `Ok(None)` on clean EOF (peer finished and closed), which is
/// the normal end of a keep-alive session. A timeout tick with no request
/// in progress is [`HttpError::Idle`] (wake to observe shutdown, then
/// call again); ticks *during* a request just keep reading until
/// `deadline` has elapsed since the request's first byte, at which point
/// the error is [`HttpError::Deadline`] and the caller answers 408.
pub fn read_request(
    stream: &mut TcpStream,
    parser: &mut RequestParser,
    deadline: Duration,
) -> Result<Option<Request>, HttpError> {
    // A pipelined request may already be buffered from a previous read.
    if let Some(req) = parser.try_take()? {
        return Ok(Some(req));
    }
    let mut started: Option<Instant> = parser.has_partial().then(Instant::now);
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if parser.has_partial() { Err(HttpError::Truncated) } else { Ok(None) };
            }
            Ok(n) => {
                parser.push(&chunk[..n]);
                if let Some(req) = parser.try_take()? {
                    return Ok(Some(req));
                }
                started.get_or_insert_with(Instant::now);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                match started {
                    // Quiet tick between requests: an idle wakeup.
                    None => return Err(HttpError::Idle),
                    Some(t0) if t0.elapsed() >= deadline => return Err(HttpError::Deadline),
                    // Slow but inside its budget: keep reading.
                    Some(_) => {}
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
    }
}

/// Static head template for the overwhelmingly common response shape,
/// up to the Content-Length digits.
const HEAD_200_PREFIX: &[u8] =
    b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: ";
const HEAD_TAIL_KEEPALIVE: &[u8] = b"\r\nConnection: keep-alive\r\n\r\n";
const HEAD_TAIL_CLOSE: &[u8] = b"\r\nConnection: close\r\n\r\n";

/// Append one decimal integer to a growable in-memory buffer without
/// going through `format!` (stack digits, one `write_all`).
fn write_decimal<W: std::io::Write>(out: &mut W, mut v: u64) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    loop {
        i -= 1;
        digits[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    let _ = out.write_all(&digits[i..]);
}

/// Render a response (head + JSON body) into a reusable buffer —
/// `Vec<u8>` or the event loop's per-connection `VecDeque<u8>` — with
/// static head templates and integer fast-format: zero heap allocations
/// beyond what `out` itself may grow. Byte-identical to the `format!`
/// rendering this replaces.
///
/// Writes to in-memory buffers are infallible, so errors are ignored and
/// the signature stays `()`.
pub fn render_response_into<W: std::io::Write>(
    out: &mut W,
    status: u16,
    reason: &str,
    body: &[u8],
    close: bool,
) {
    if status == 200 && reason == "OK" {
        let _ = out.write_all(HEAD_200_PREFIX);
    } else {
        let _ = out.write_all(b"HTTP/1.1 ");
        write_decimal(out, u64::from(status));
        let _ = out.write_all(b" ");
        let _ = out.write_all(reason.as_bytes());
        let _ = out.write_all(b"\r\nContent-Type: application/json\r\nContent-Length: ");
    }
    write_decimal(out, body.len() as u64);
    let _ = out.write_all(if close { HEAD_TAIL_CLOSE } else { HEAD_TAIL_KEEPALIVE });
    let _ = out.write_all(body);
}

/// Render a response (head + JSON body) as one contiguous byte vector, so
/// front ends can answer with a single `write` syscall.
pub fn render_response(status: u16, reason: &str, body: &str, close: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(96 + body.len());
    render_response_into(&mut out, status, reason, body.as_bytes(), close);
    out
}

/// Write a response with a JSON body.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    stream.write_all(&render_response(status, reason, body, close))?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Parse a full byte sequence through the incremental parser.
    fn parse_whole(input: &[u8]) -> Result<Option<Request>, HttpError> {
        let mut p = RequestParser::new();
        p.push(input);
        p.try_take()
    }

    /// Push raw bytes through a real socket and parse them with the
    /// blocking reader (writer closes when done, like a one-shot client).
    fn parse_bytes(input: &[u8]) -> Result<Option<Request>, HttpError> {
        parse_socket(input, &[])
    }

    /// Like [`parse_bytes`], but the writer sleeps between the two script
    /// segments — long enough to straddle the [`IDLE_TICK`] socket
    /// timeout when `pause` exceeds it.
    fn parse_socket(first: &[u8], rest: &[u8]) -> Result<Option<Request>, HttpError> {
        parse_socket_deadline(first, rest, Duration::from_millis(320), DEFAULT_REQUEST_DEADLINE)
    }

    fn parse_socket_deadline(
        first: &[u8],
        rest: &[u8],
        pause: Duration,
        deadline: Duration,
    ) -> Result<Option<Request>, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (first, rest) = (first.to_vec(), rest.to_vec());
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&first).unwrap();
            if !rest.is_empty() {
                std::thread::sleep(pause);
                s.write_all(&rest).unwrap();
            }
        });
        let (mut conn, _) = listener.accept().unwrap();
        conn.set_read_timeout(Some(IDLE_TICK)).unwrap();
        let mut parser = RequestParser::new();
        let out = read_request(&mut conn, &mut parser, deadline);
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse_bytes(b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body, b"{\"a\":1}");
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn honors_connection_close_and_http10() {
        let req =
            parse_bytes(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().unwrap();
        assert!(req.close);
        let req = parse_bytes(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(req.close);
    }

    #[test]
    fn connection_matching_is_token_wise() {
        // `not-close` must NOT be read as a close request (the old
        // substring match did exactly that).
        let req = parse_whole(b"GET / HTTP/1.1\r\nConnection: not-close\r\n\r\n").unwrap().unwrap();
        assert!(!req.close);
        // ...but a close token anywhere in the list counts.
        let req =
            parse_whole(b"GET / HTTP/1.1\r\nConnection: foo, Close\r\n\r\n").unwrap().unwrap();
        assert!(req.close);
        // HTTP/1.0 + explicit keep-alive token stays open.
        let req =
            parse_whole(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap().unwrap();
        assert!(!req.close);
    }

    #[test]
    fn clean_eof_is_none() {
        assert_eq!(parse_bytes(b"").unwrap(), None);
    }

    #[test]
    fn truncated_body_errors() {
        let err = parse_bytes(b"POST /p HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort").err();
        assert_eq!(err, Some(HttpError::Truncated));
    }

    #[test]
    fn malformed_request_line_errors() {
        assert!(matches!(parse_bytes(b"NONSENSE\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse_bytes(b"GET /x SPDY/99\r\n\r\n"), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn content_length_is_strict_digits() {
        // `usize::parse` would happily accept `+7`; we must not.
        for bad in ["+7", " 7 x", "0x10", "7.0", ""] {
            let head = format!("POST /p HTTP/1.1\r\nContent-Length: {bad}\r\n\r\n1234567");
            assert!(
                matches!(parse_whole(head.as_bytes()), Err(HttpError::Malformed(_))),
                "content-length {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn conflicting_duplicate_content_length_is_rejected() {
        let err = parse_whole(
            b"POST /p HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 8\r\n\r\n12345678",
        )
        .err();
        assert_eq!(err, Some(HttpError::Malformed("conflicting content-length".into())));
        // Duplicates that agree are legal (RFC 9112 permits coalescing).
        let req = parse_whole(
            b"POST /p HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn oversized_declarations_are_rejected() {
        let huge = format!("POST /p HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert_eq!(parse_bytes(huge.as_bytes()).err(), Some(HttpError::TooLarge("body")));
        let mut head = String::from("GET /p HTTP/1.1\r\n");
        for i in 0..2000 {
            head.push_str(&format!("X-Pad-{i}: {}\r\n", "y".repeat(64)));
        }
        head.push_str("\r\n");
        assert_eq!(parse_bytes(head.as_bytes()).err(), Some(HttpError::TooLarge("header")));
    }

    #[test]
    fn parser_accepts_byte_at_a_time_delivery() {
        let wire = b"POST /predict HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        let mut p = RequestParser::new();
        for (i, b) in wire.iter().enumerate() {
            assert_eq!(p.try_take().unwrap(), None, "complete before byte {i}?");
            p.push(std::slice::from_ref(b));
        }
        let req = p.try_take().unwrap().unwrap();
        assert_eq!(req.body, b"{\"a\":1}");
        assert!(!p.has_partial(), "buffer fully consumed");
    }

    #[test]
    fn parser_keeps_pipelined_surplus() {
        let mut p = RequestParser::new();
        p.push(b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n");
        assert_eq!(p.try_take().unwrap().unwrap().path, "/healthz");
        assert_eq!(p.try_take().unwrap().unwrap().path, "/metrics");
        assert_eq!(p.try_take().unwrap(), None);
    }

    #[test]
    fn render_into_matches_legacy_format_rendering() {
        for (status, reason, body, close) in [
            (200, "OK", "{\"rate\":12.5}", false),
            (200, "OK", "", true),
            (404, "Not Found", "{\"error\":\"no route GET /x\"}", false),
            (503, "Service Unavailable", "{\"error\":\"overloaded\"}", true),
        ] {
            let expected = format!(
                "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nConnection: {}\r\n\r\n{body}",
                body.len(),
                if close { "close" } else { "keep-alive" },
            );
            assert_eq!(
                render_response(status, reason, body, close),
                expected.as_bytes(),
                "render mismatch for {status} {reason}"
            );
        }
    }

    #[test]
    fn peek_exposes_byte_ranges_and_consume_advances() {
        let mut p = RequestParser::new();
        p.push(
            b"POST /predict HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}GET /h HTTP/1.1\r\n\r\n",
        );
        let f = p.peek().unwrap().unwrap();
        assert_eq!(f.method, Method::Post);
        let win = p.window();
        assert_eq!(f.method_bytes(win), b"POST");
        assert_eq!(f.path_bytes(win), b"/predict");
        assert_eq!(f.body(win), b"{\"a\":1}");
        // Peeking is idempotent: nothing consumed yet.
        assert_eq!(p.peek().unwrap().unwrap(), f);
        p.consume(f.wire_len());
        let f2 = p.peek().unwrap().unwrap();
        assert_eq!(f2.method, Method::Get);
        assert_eq!(f2.path_bytes(p.window()), b"/h");
        assert_eq!(f2.body(p.window()), b"");
        p.consume(f2.wire_len());
        assert!(!p.has_partial());
        assert_eq!(p.peek().unwrap(), None);
    }

    #[test]
    fn push_compacts_consumed_prefix_without_losing_tail() {
        let mut p = RequestParser::new();
        // One large request (consumed) followed by a partial head, then
        // pushes that trigger compaction.
        let pad = "z".repeat(8 * 1024);
        let big = format!("POST /p HTTP/1.1\r\nContent-Length: {}\r\n\r\n{pad}", pad.len());
        p.push(big.as_bytes());
        p.push(b"GET /next HT");
        let f = p.peek().unwrap().unwrap();
        p.consume(f.wire_len());
        assert!(p.has_partial());
        p.push(b"TP/1.1\r\n\r\n");
        let req = p.try_take().unwrap().unwrap();
        assert_eq!(req.path, "/next");
        assert!(!p.has_partial());
    }

    #[test]
    fn slow_body_straddling_timeout_ticks_still_parses() {
        // Body lands ~320 ms after the head: more than one IDLE_TICK.
        // The old reader mapped that tick to Truncated and dropped the
        // connection; now the request completes.
        let req = parse_socket(b"POST /p HTTP/1.1\r\nContent-Length: 7\r\n\r\n", b"{\"a\":1}")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn slow_header_straddling_timeout_ticks_still_parses() {
        let req = parse_socket(b"GET /healthz HTTP/1.1\r\nX-Slow", b"-Header: 1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn stalled_request_hits_deadline() {
        // Writer pauses far past the test deadline with the body
        // undelivered → Deadline (the caller answers 408), not a silent
        // drop.
        let err = parse_socket_deadline(
            b"POST /p HTTP/1.1\r\nContent-Length: 7\r\n\r\n",
            b"{\"a\":1}",
            Duration::from_millis(1200),
            Duration::from_millis(400),
        )
        .err();
        assert_eq!(err, Some(HttpError::Deadline));
    }

    #[test]
    fn idle_tick_without_request_is_idle() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (mut conn, _) = listener.accept().unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        let mut parser = RequestParser::new();
        let err = read_request(&mut conn, &mut parser, DEFAULT_REQUEST_DEADLINE).err();
        assert_eq!(err, Some(HttpError::Idle));
    }
}
