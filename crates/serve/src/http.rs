//! A deliberately small HTTP/1.1 implementation over `std::net`.
//!
//! Enough of the protocol for a loopback/intranet prediction service and
//! its load generator: request line + headers + `Content-Length` bodies,
//! keep-alive (the HTTP/1.1 default) with `Connection: close` honored,
//! and hard limits on header and body size so a hostile peer cannot make
//! the server buffer unboundedly. No chunked encoding, no TLS — artifacts
//! of the vendored-dependency policy, documented in DESIGN.md.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Longest accepted request line + headers, bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body, bytes. Prediction bodies are a few
/// hundred bytes; this leaves room for batched client extensions.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path component, e.g. `/predict`.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Client asked to close after this exchange.
    pub close: bool,
}

/// Protocol-level failure while reading a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Read timeout fired while the connection was quiet (no request in
    /// progress). Keep-alive servers use socket timeouts so idle
    /// connections wake periodically to observe shutdown; this variant
    /// means "nothing happened", not a protocol error.
    Idle,
    /// Peer closed before a complete request (clean EOF between
    /// requests is reported as `Ok(None)` instead).
    Truncated,
    /// Malformed request line or header.
    Malformed(String),
    /// Head or body over the configured limits.
    TooLarge(&'static str),
    /// Underlying socket error.
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Idle => write!(f, "idle timeout"),
            HttpError::Truncated => write!(f, "connection closed mid-request"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(what) => write!(f, "{what} too large"),
            HttpError::Io(m) => write!(f, "io: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Read one request off a keep-alive connection.
///
/// Returns `Ok(None)` on clean EOF (peer finished and closed), which is
/// the normal end of a keep-alive session.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Option<Request>, HttpError> {
    let mut line = String::new();
    let mut head_bytes = 0usize;
    // A timeout before any byte of a new request is an idle wakeup; a
    // timeout after we started reading means the request is broken.
    match read_line_limited(reader, &mut line, &mut head_bytes) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(LineError::Timeout) if line.is_empty() => return Err(HttpError::Idle),
        Err(e) => return Err(e.into_http()),
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("request line {:?}", line.trim_end())));
    }

    let mut content_length = 0usize;
    let mut close = version == "HTTP/1.0";
    loop {
        line.clear();
        if read_line_limited(reader, &mut line, &mut head_bytes).map_err(LineError::into_http)? == 0
        {
            return Err(HttpError::Truncated);
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(HttpError::Malformed(format!("header {trimmed:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse::<usize>()
                    .map_err(|_| HttpError::Malformed(format!("content-length {value:?}")))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(HttpError::TooLarge("body"));
                }
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    close = true;
                } else if v.contains("keep-alive") {
                    close = false;
                }
            }
            _ => {}
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|_| HttpError::Truncated)?;
    Ok(Some(Request { method, path, body, close }))
}

/// Line-read failure, pre-classification into [`HttpError`].
enum LineError {
    /// Socket read timeout (idle if nothing was consumed yet).
    Timeout,
    /// Head grew past [`MAX_HEAD_BYTES`].
    TooLarge,
    /// Anything else on the socket.
    Io(String),
}

impl LineError {
    fn into_http(self) -> HttpError {
        match self {
            // A timeout mid-head means the peer stalled inside a request.
            LineError::Timeout => HttpError::Truncated,
            LineError::TooLarge => HttpError::TooLarge("header"),
            LineError::Io(m) => HttpError::Io(m),
        }
    }
}

fn read_line_limited(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    head_bytes: &mut usize,
) -> Result<usize, LineError> {
    let n = reader.read_line(line).map_err(|e| {
        if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) {
            LineError::Timeout
        } else {
            LineError::Io(e.to_string())
        }
    })?;
    *head_bytes += n;
    if *head_bytes > MAX_HEAD_BYTES {
        return Err(LineError::TooLarge);
    }
    Ok(n)
}

/// Write a response with a JSON body.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: application/json\r\n\
         Content-Length: {}\r\n\
         Connection: {}\r\n\
         \r\n",
        body.len(),
        if close { "close" } else { "keep-alive" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Push raw bytes through a real socket and parse them.
    fn parse_bytes(input: &[u8]) -> Result<Option<Request>, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let input = input.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&input).unwrap();
        });
        let (conn, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(conn);
        let out = read_request(&mut reader);
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse_bytes(b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body, b"{\"a\":1}");
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn honors_connection_close_and_http10() {
        let req =
            parse_bytes(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().unwrap();
        assert!(req.close);
        let req = parse_bytes(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(req.close);
    }

    #[test]
    fn clean_eof_is_none() {
        assert_eq!(parse_bytes(b"").unwrap(), None);
    }

    #[test]
    fn truncated_body_errors() {
        let err = parse_bytes(b"POST /p HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort").err();
        assert_eq!(err, Some(HttpError::Truncated));
    }

    #[test]
    fn malformed_request_line_errors() {
        assert!(matches!(parse_bytes(b"NONSENSE\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse_bytes(b"GET /x SPDY/99\r\n\r\n"), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn oversized_declarations_are_rejected() {
        let huge = format!("POST /p HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert_eq!(parse_bytes(huge.as_bytes()).err(), Some(HttpError::TooLarge("body")));
        let mut head = String::from("GET /p HTTP/1.1\r\n");
        for i in 0..2000 {
            head.push_str(&format!("X-Pad-{i}: {}\r\n", "y".repeat(64)));
        }
        head.push_str("\r\n");
        assert_eq!(parse_bytes(head.as_bytes()).err(), Some(HttpError::TooLarge("header")));
    }
}
