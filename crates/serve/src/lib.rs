//! # wdt-serve — online transfer-rate prediction service
//!
//! The operational face of the paper's models: a scheduler that must
//! decide *now* whether to start, defer, or re-tune a transfer asks this
//! service "what rate will this transfer get?" and receives a prediction
//! from the currently-deployed [`FittedModel`](wdt_model::FittedModel)
//! artifact in well under a millisecond.
//!
//! The subsystem is deliberately built on `std::net` alone — no async
//! runtime, no HTTP framework — consistent with the workspace's
//! vendored-dependency policy. Four layers:
//!
//! * [`registry`] — versioned model artifacts on disk, validated against
//!   the serving feature schema, atomically hot-swappable while requests
//!   are in flight;
//! * [`batcher`] — a bounded submission queue that coalesces concurrent
//!   single predictions into batched `predict` calls, and sheds load
//!   explicitly when full;
//! * [`server`] — a hand-rolled HTTP/1.1 front end (`TcpListener` +
//!   fixed worker pool, keep-alive, graceful shutdown) exposing
//!   `POST /predict`, `GET /healthz`, `GET /metrics`, `POST /reload`,
//!   and `POST /shutdown`;
//! * [`eventloop`] — the same HTTP surface on a nonblocking readiness
//!   event loop (`poll(2)` via [`shim`]): a fixed number of poller
//!   shards multiplex all connections, so idle keep-alive clients cost
//!   bytes, not threads. Selected at runtime via [`Frontend`];
//! * [`loadgen`] — closed- and open-loop load generation over real
//!   sockets, reporting throughput and latency percentiles.
//!
//! Determinism contract: a served prediction is **bitwise identical** to
//! `FittedModel::predict` on the same row offline. Feature values and the
//! predicted rate cross the wire as shortest-round-trip JSON numbers
//! (`wdt_types::json`), which reparse to the same `f64` bit pattern, and
//! batching never changes per-row arithmetic.

pub mod batcher;
pub mod client;
pub mod eventloop;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod registry;
mod routes;
mod rowscan;
pub mod server;
pub mod shim;

pub use batcher::{BatchConfig, Batcher, Explanation, Prediction, SubmitError};
pub use client::HttpClient;
pub use eventloop::{AnyServer, EventLoopServer};
pub use http::{RequestParser, DEFAULT_REQUEST_DEADLINE, IDLE_TICK};
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenMode, LoadgenReport};
pub use metrics::ServerMetrics;
pub use registry::{LoadedModel, ModelRegistry, RegistryError, ServeSchema};
pub use server::{Frontend, ServeConfig, Server};
