//! The blocking HTTP front end: `TcpListener`, a fixed worker pool,
//! routing, and graceful shutdown.
//!
//! This is the original thread-per-connection design, kept for its
//! simplicity and as a differential reference for the event-loop front
//! end (`eventloop.rs`): both speak through the same parser
//! (`http::RequestParser`), router (`routes::route`), batcher, and
//! metrics, so integration tests run identical traffic against each.
//!
//! ## Endpoints
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /predict` | body `{"<feature>": <num>, …}` → `{"rate", "version", "batch_size"}` |
//! | `GET /healthz` | liveness + current model version |
//! | `GET /metrics` | counters and latency/batch histograms (p50/p95/p99) |
//! | `POST /reload` | rescan the model directory, hot-swap if newer |
//! | `POST /shutdown` | begin graceful shutdown (used by tests/CI) |
//!
//! Feature maps may omit features (they default to 0.0 — the natural
//! encoding for "no competing load observed") but may not name unknown
//! features or carry non-finite values; both are 400s. Overload is an
//! explicit 503 `{"error":"overloaded"}` from the batcher's admission
//! control, never a stalled socket. A request that stalls mid-delivery
//! past [`ServeConfig::request_deadline`] is answered 408; mere slowness
//! across idle-timeout ticks is not an error.
//!
//! ## Shutdown discipline
//!
//! `shutdown()` (or `POST /shutdown`, or the CLI's signal handler) stops
//! the accept loop first, lets HTTP workers finish the requests already
//! on their connections, then drains the batcher — so every admitted
//! request is answered and the service never drops in-flight work.

use crate::batcher::{BatchConfig, Batcher};
use crate::http::{
    read_request, write_response, HttpError, Method, RequestParser, DEFAULT_REQUEST_DEADLINE,
    IDLE_TICK,
};
use crate::metrics::ServerMetrics;
use crate::registry::ModelRegistry;
use crate::routes::{
    explain_response, prediction_response, protocol_error_response, route, submit_error_response,
};
use crate::routes::{Body, Ctx, Routed};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which HTTP front end serves the sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frontend {
    /// Thread-per-connection workers with blocking reads (`server.rs`).
    Threaded,
    /// Sharded nonblocking readiness event loop (`eventloop.rs`).
    EventLoop,
}

/// Front-end configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Port to bind on 127.0.0.1 (0 → ephemeral, see [`Server::addr`]).
    pub port: u16,
    /// HTTP worker threads for the threaded front end (each owns one
    /// connection at a time, so this also bounds concurrent connections
    /// there). Ignored by the event loop.
    pub workers: usize,
    /// Acceptor/poller shards for the event-loop front end. Ignored by
    /// the threaded front end.
    pub acceptors: usize,
    /// Wall-clock budget for one request to arrive in full once its
    /// first byte is seen; expiry answers 408.
    pub request_deadline: Duration,
    /// Micro-batching knobs.
    pub batch: BatchConfig,
    /// How many top-|contribution| features `/explain` names in its
    /// `top` array (the full contribution vector is always included).
    pub explain_top: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            workers: 8,
            acceptors: 2,
            request_deadline: DEFAULT_REQUEST_DEADLINE,
            batch: BatchConfig::default(),
            explain_top: 5,
        }
    }
}

/// A running prediction service (threaded front end).
pub struct Server {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    http_workers: Mutex<Vec<JoinHandle<()>>>,
    conn_tx: Mutex<Option<Sender<TcpStream>>>,
}

impl Server {
    /// Bind, spawn the worker pool, and start accepting.
    pub fn start(registry: Arc<ModelRegistry>, cfg: ServeConfig) -> std::io::Result<Arc<Server>> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(ServerMetrics::new());
        let batcher = Batcher::start(registry.clone(), metrics.clone(), cfg.batch.clone());
        let ctx = Arc::new(Ctx {
            registry,
            batcher,
            metrics,
            stopping: Arc::new(AtomicBool::new(false)),
            explain_top: cfg.explain_top,
        });

        let (conn_tx, conn_rx) = channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let deadline = cfg.request_deadline;
        let http_workers = (0..cfg.workers.max(1))
            .map(|i| {
                let rx = conn_rx.clone();
                let ctx = ctx.clone();
                std::thread::Builder::new()
                    .name(format!("wdt-http-{i}"))
                    .spawn(move || http_worker(&rx, &ctx, deadline))
                    .expect("spawn http worker")
            })
            .collect();

        let accept_ctx = ctx.clone();
        let accept_tx = conn_tx.clone();
        let accept_thread = std::thread::Builder::new()
            .name("wdt-accept".into())
            .spawn(move || accept_loop(listener, accept_tx, &accept_ctx))
            .expect("spawn accept loop");

        Ok(Arc::new(Server {
            addr,
            ctx,
            accept_thread: Mutex::new(Some(accept_thread)),
            http_workers: Mutex::new(http_workers),
            conn_tx: Mutex::new(Some(conn_tx)),
        }))
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared metrics (for embedding / tests).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.ctx.metrics
    }

    /// The model registry the server predicts with.
    pub fn registry(&self) -> &ModelRegistry {
        &self.ctx.registry
    }

    /// True once shutdown has been requested (API call or `POST /shutdown`).
    pub fn stopping(&self) -> bool {
        self.ctx.stopping.load(Ordering::SeqCst)
    }

    /// Block until shutdown is requested, polling `period`.
    pub fn wait_until_stopping(&self, period: Duration) {
        while !self.stopping() {
            std::thread::sleep(period);
        }
    }

    /// Graceful shutdown; see the module docs for ordering. Idempotent.
    pub fn shutdown(&self) {
        self.ctx.stopping.store(true, Ordering::SeqCst);
        // Unblock `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.lock().expect("accept handle").take() {
            let _ = t.join();
        }
        // Closing the channel ends the workers once queued+open
        // connections finish.
        drop(self.conn_tx.lock().expect("conn sender").take());
        let mut workers = self.http_workers.lock().expect("worker handles");
        for w in workers.drain(..) {
            let _ = w.join();
        }
        // Batcher last: HTTP workers may be waiting on replies.
        self.ctx.batcher.shutdown();
    }
}

fn accept_loop(listener: TcpListener, tx: Sender<TcpStream>, ctx: &Ctx) {
    for stream in listener.incoming() {
        if ctx.stopping.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(s) => {
                // Idle keep-alive connections wake periodically so a
                // shutdown is never blocked on a silent client.
                let _ = s.set_read_timeout(Some(IDLE_TICK));
                let _ = s.set_nodelay(true);
                if tx.send(s).is_err() {
                    break;
                }
            }
            Err(_) => continue,
        }
    }
}

fn http_worker(rx: &Arc<Mutex<Receiver<TcpStream>>>, ctx: &Ctx, deadline: Duration) {
    loop {
        let stream = {
            let guard = rx.lock().expect("conn receiver");
            guard.recv()
        };
        match stream {
            Ok(s) => handle_connection(s, ctx, deadline),
            Err(_) => return, // channel closed → shutdown
        }
    }
}

fn handle_connection(mut stream: TcpStream, ctx: &Ctx, deadline: Duration) {
    let mut parser = RequestParser::new();
    loop {
        match read_request(&mut stream, &mut parser, deadline) {
            Ok(None) => return,
            Ok(Some(req)) => {
                let close = req.close || ctx.stopping.load(Ordering::SeqCst);
                let mut row = Vec::new();
                let routed = route(
                    Method::classify(req.method.as_bytes()),
                    req.method.as_bytes(),
                    req.path.as_bytes(),
                    &req.body,
                    ctx,
                    &mut row,
                );
                let (status, reason, body) = match routed {
                    Routed::Done(status, reason, body) => (status, reason, body),
                    Routed::Predict => blocking_predict(row, ctx),
                    Routed::Explain => blocking_explain(row, ctx),
                };
                ctx.metrics.on_response(status);
                if write_response(&mut stream, status, reason, &body, close).is_err() {
                    return;
                }
                if close {
                    return;
                }
            }
            Err(HttpError::Idle) => {
                // No request in flight; keep waiting unless draining.
                if ctx.stopping.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) => {
                // Answer what is answerable (400/408/413), then close;
                // hangups and socket errors just close.
                if let Some((status, reason, body)) = protocol_error_response(&e) {
                    ctx.metrics.on_response(status);
                    let _ = write_response(&mut stream, status, reason, &body, true);
                }
                return;
            }
        }
    }
}

/// Submit one row and park on the reply channel (the threaded front end
/// has a whole worker thread to burn on waiting).
fn blocking_predict(row: Vec<f64>, ctx: &Ctx) -> (u16, &'static str, Body) {
    let started = Instant::now();
    let rx = match ctx.batcher.submit(row) {
        Ok(rx) => rx,
        Err(e) => return submit_error_response(&e),
    };
    match rx.recv() {
        Ok(p) => {
            let (status, reason, body) = prediction_response(&p);
            if status == 200 {
                ctx.metrics.on_prediction(started.elapsed().as_micros() as u64);
            }
            (status, reason, body)
        }
        Err(_) => (
            500,
            "Internal Server Error",
            crate::routes::error_body("inference worker gone").into(),
        ),
    }
}

/// Like [`blocking_predict`], but the reply carries per-feature
/// attributions rendered into the `/explain` body.
fn blocking_explain(row: Vec<f64>, ctx: &Ctx) -> (u16, &'static str, Body) {
    let started = Instant::now();
    let rx = match ctx.batcher.submit_explain(row) {
        Ok(rx) => rx,
        Err(e) => return submit_error_response(&e),
    };
    match rx.recv() {
        Ok(p) => {
            let (status, reason, body) = explain_response(&p, ctx.explain_top);
            if status == 200 {
                ctx.metrics.on_prediction(started.elapsed().as_micros() as u64);
            }
            (status, reason, body)
        }
        Err(_) => (
            500,
            "Internal Server Error",
            crate::routes::error_body("inference worker gone").into(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::registry::ServeSchema;
    use wdt_features::Dataset;
    use wdt_model::{FitConfig, FittedModel, ModelKind};
    use wdt_types::JsonValue;

    fn start_test_server(name: &str) -> (Arc<Server>, FittedModel) {
        let dir = std::env::temp_dir().join("wdt-server-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let schema = ServeSchema::prediction();
        let w = schema.width();
        let x: Vec<Vec<f64>> =
            (0..150).map(|i| (0..w).map(|j| ((i * (j + 2)) % 19) as f64).collect()).collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] + r[3] * r[3]).collect();
        let model = FittedModel::fit(
            &Dataset::new(schema.names().to_vec(), x, y),
            ModelKind::Gbdt,
            &FitConfig::default(),
        )
        .unwrap();
        std::fs::write(dir.join("v1.json"), model.to_json()).unwrap();
        let offline = FittedModel::from_json(&model.to_json()).unwrap();
        let registry = Arc::new(ModelRegistry::open(dir, schema).unwrap());
        (Server::start(registry, ServeConfig::default()).unwrap(), offline)
    }

    #[test]
    fn healthz_metrics_and_predict_routes() {
        let (server, offline) = start_test_server("routes");
        let mut client = HttpClient::connect(server.addr()).unwrap();

        let (status, body) = client.get("/healthz").unwrap();
        assert_eq!(status, 200);
        let v = JsonValue::parse(&body).unwrap();
        assert_eq!(v.field("version").unwrap().as_str().unwrap(), "v1");

        let names = server.registry().schema().names().to_vec();
        let features = JsonValue::Obj(
            names.iter().enumerate().map(|(i, n)| (n.clone(), JsonValue::Num(i as f64))).collect(),
        );
        let (status, body) = client.post("/predict", &features.to_string()).unwrap();
        assert_eq!(status, 200, "{body}");
        let v = JsonValue::parse(&body).unwrap();
        let row: Vec<f64> = (0..names.len()).map(|i| i as f64).collect();
        assert_eq!(
            v.field("rate").unwrap().as_f64().unwrap().to_bits(),
            offline.predict_row(&row).to_bits(),
            "served != offline"
        );

        let (status, body) = client.get("/metrics").unwrap();
        assert_eq!(status, 200);
        let v = JsonValue::parse(&body).unwrap();
        assert!(v.field("predictions").unwrap().as_usize().unwrap() >= 1);
        let eps = v.field("endpoints").unwrap();
        assert_eq!(eps.field("predict").unwrap().as_usize().unwrap(), 1);
        assert_eq!(eps.field("healthz").unwrap().as_usize().unwrap(), 1);
        assert!(eps.field("metrics").unwrap().as_usize().unwrap() >= 1);
        assert!(v.field("uptime_s").unwrap().as_f64().unwrap() >= 0.0);
        assert!(v.field("build").unwrap().field("version").is_ok());
        server.shutdown();
    }

    #[test]
    fn explain_matches_predict_bitwise_and_alerts_respond() {
        let (server, offline) = start_test_server("explain-route");
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let names = server.registry().schema().names().to_vec();
        let features = JsonValue::Obj(
            names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.clone(), JsonValue::Num((i % 7) as f64 + 0.5)))
                .collect(),
        );
        let (status, predict_body) = client.post("/predict", &features.to_string()).unwrap();
        assert_eq!(status, 200, "{predict_body}");
        let rate =
            JsonValue::parse(&predict_body).unwrap().field("rate").unwrap().as_f64().unwrap();

        let (status, body) = client.post("/explain", &features.to_string()).unwrap();
        assert_eq!(status, 200, "{body}");
        let v = JsonValue::parse(&body).unwrap();
        let prediction = v.field("prediction").unwrap().as_f64().unwrap();
        assert_eq!(prediction.to_bits(), rate.to_bits(), "explain/predict must agree");
        let bias = v.field("bias").unwrap().as_f64().unwrap();
        let contribs = v.field("contributions").unwrap().as_f64_vec().unwrap();
        let fold = contribs.iter().fold(bias, |a, &c| a + c);
        assert_eq!(fold.to_bits(), prediction.to_bits(), "fold must hit the prediction");
        let row: Vec<f64> = (0..names.len()).map(|i| (i % 7) as f64 + 0.5).collect();
        assert_eq!(prediction.to_bits(), offline.predict_row(&row).to_bits());
        assert_eq!(v.field("top").unwrap().as_arr().unwrap().len(), 5.min(contribs.len()));

        let (status, body) = client.get("/alerts").unwrap();
        assert_eq!(status, 200);
        let v = JsonValue::parse(&body).unwrap();
        assert!(v.field("alerts").unwrap().as_arr().is_ok(), "{body}");

        let (status, body) = client.get("/metrics.prom").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE serve_requests counter"), "{body}");
        server.shutdown();
    }

    #[test]
    fn bad_requests_are_client_errors_not_crashes() {
        let (server, _) = start_test_server("bad-requests");
        let mut c = HttpClient::connect(server.addr()).unwrap();
        for (body, expect_fragment) in [
            ("not json", "invalid"),
            ("[1,2,3]", "object"),
            ("{\"NotAFeature\": 1}", "unknown feature"),
            ("{\"Ksout\": \"fast\"}", "must be a number"),
            ("{\"Ksout\": 1e999}", "not finite"),
        ] {
            let (status, resp) = c.post("/predict", body).unwrap();
            assert_eq!(status, 400, "{body} -> {resp}");
            assert!(resp.contains(expect_fragment), "{body} -> {resp}");
        }
        let (status, _) = c.get("/nope").unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn protocol_errors_are_counted_as_answered_requests() {
        let (server, _) = start_test_server("protocol-errors");
        // A malformed request line → 400 written, connection closed, and
        // the metrics must show requests == errors + ok, never
        // errors > requests (the old double-count family of bugs).
        use std::io::{Read, Write};
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut resp = String::new();
        raw.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");

        let mut c = HttpClient::connect(server.addr()).unwrap();
        let (_, body) = c.get("/metrics").unwrap();
        let m = JsonValue::parse(&body).unwrap();
        let requests = m.field("requests").unwrap().as_usize().unwrap();
        let errors = m.field("errors").unwrap().as_usize().unwrap();
        let shed = m.field("shed").unwrap().as_usize().unwrap();
        assert!(errors >= 1, "protocol 400 must be counted: {body}");
        assert!(errors + shed <= requests, "error rate exceeds request rate: {body}");
        server.shutdown();
    }

    #[test]
    fn shutdown_endpoint_stops_the_server() {
        let (server, _) = start_test_server("shutdown-route");
        let mut c = HttpClient::connect(server.addr()).unwrap();
        let (status, _) = c.post("/shutdown", "").unwrap();
        assert_eq!(status, 200);
        assert!(server.stopping());
        server.shutdown();
        // Connections after shutdown fail (listener gone).
        assert!(
            HttpClient::connect(server.addr()).is_err() || {
                // The OS may accept briefly; a request must then fail.
                let mut c2 = HttpClient::connect(server.addr()).unwrap();
                c2.get("/healthz").is_err()
            }
        );
    }
}
