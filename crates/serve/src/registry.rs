//! Versioned model registry with atomic hot-swap.
//!
//! A registry watches a directory of `FittedModel` JSON artifacts
//! (`<version>.json`; versions order lexicographically, so `v0001.json`,
//! `v0002.json`, … is the natural scheme). The highest version is the
//! *current* model. [`ModelRegistry::reload`] rescans the directory and,
//! if a newer valid artifact appeared, swaps it in atomically: in-flight
//! requests keep the `Arc` of the model they started with, so a swap
//! never invalidates a prediction mid-batch, and a broken new artifact
//! leaves the old model serving.
//!
//! Every artifact is validated against the serving [`ServeSchema`] before
//! it can become current: each of the model's kept columns must name the
//! same feature at the same index the schema puts it, so a registry can
//! never serve a model that would silently read the wrong feature.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};
use wdt_features::{FEATURE_NAMES, NFLT_INDEX};
use wdt_model::FittedModel;

/// The feature layout prediction rows are built in: names, in order.
///
/// The default serving schema is the paper's prediction layout —
/// [`FEATURE_NAMES`] with `Nflt` dropped, exactly what
/// `wdt_model::build_dataset(_, false)` trains on (faults are unknown at
/// decision time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSchema {
    names: Vec<String>,
    index: BTreeMap<String, usize>,
    scan_index: crate::rowscan::SchemaIndex,
}

impl ServeSchema {
    /// Build a schema from ordered feature names.
    pub fn new(names: Vec<String>) -> Self {
        let index = names.iter().enumerate().map(|(i, n)| (n.clone(), i)).collect();
        let scan_index = crate::rowscan::SchemaIndex::build(&names);
        ServeSchema { names, index, scan_index }
    }

    /// The prediction-time schema (Table 2 features minus `Nflt`).
    pub fn prediction() -> Self {
        let names = FEATURE_NAMES
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != NFLT_INDEX)
            .map(|(_, n)| n.to_string())
            .collect();
        Self::new(names)
    }

    /// Number of features in a row.
    pub fn width(&self) -> usize {
        self.names.len()
    }

    /// Ordered feature names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Index of a feature name, if part of the schema.
    pub fn position(&self) -> &BTreeMap<String, usize> {
        &self.index
    }

    /// The precomputed first-byte index the allocation-free body scanner
    /// resolves feature names against (built once per schema).
    pub(crate) fn scan_index(&self) -> &crate::rowscan::SchemaIndex {
        &self.scan_index
    }

    /// Check an artifact against this schema: every kept column must sit
    /// at an in-bounds index and name the feature the schema has there.
    pub fn validate(&self, model: &FittedModel) -> Result<(), RegistryError> {
        for (&col, name) in model.kept_columns().iter().zip(model.feature_names()) {
            match self.names.get(col) {
                Some(expected) if expected == name => {}
                Some(expected) => {
                    return Err(RegistryError::Schema(format!(
                        "artifact expects '{name}' at column {col}, schema has '{expected}'"
                    )))
                }
                None => {
                    return Err(RegistryError::Schema(format!(
                        "artifact column {col} ('{name}') is outside the \
                         {}-feature serving schema",
                        self.width()
                    )))
                }
            }
        }
        Ok(())
    }
}

/// An immutable, validated, in-memory model version.
///
/// Handed out as `Arc<LoadedModel>`: request handlers clone the `Arc`
/// once and use the same version for an entire batch, so hot-swaps are
/// race-free by construction.
pub struct LoadedModel {
    /// Version label (artifact file stem).
    pub version: String,
    /// The version label as a shared string, built once at load time so
    /// every per-prediction response clones a refcount instead of
    /// allocating a fresh `Arc<str>` per batch.
    pub version_shared: Arc<str>,
    /// The deserialized model.
    pub model: FittedModel,
}

impl LoadedModel {
    /// Wrap a validated model under its version label.
    pub fn new(version: String, model: FittedModel) -> Self {
        let version_shared = Arc::from(version.as_str());
        LoadedModel { version, version_shared, model }
    }
}

/// Registry failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Directory unreadable or artifact I/O failed.
    Io(String),
    /// No `*.json` artifact present.
    Empty(String),
    /// Artifact failed to parse as a model.
    Artifact(String),
    /// Artifact incompatible with the serving feature schema.
    Schema(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io(m) => write!(f, "registry io: {m}"),
            RegistryError::Empty(d) => write!(f, "no model artifacts (*.json) in {d}"),
            RegistryError::Artifact(m) => write!(f, "bad model artifact: {m}"),
            RegistryError::Schema(m) => write!(f, "schema mismatch: {m}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Versioned model store; see the module docs.
pub struct ModelRegistry {
    dir: PathBuf,
    schema: ServeSchema,
    current: RwLock<Arc<LoadedModel>>,
}

impl ModelRegistry {
    /// Open a registry over `dir`, loading the highest-versioned valid
    /// artifact. Fails if the directory holds no loadable artifact.
    pub fn open(dir: impl Into<PathBuf>, schema: ServeSchema) -> Result<Self, RegistryError> {
        let dir = dir.into();
        let initial = Self::load_latest(&dir, &schema)?;
        Ok(ModelRegistry { dir, schema, current: RwLock::new(Arc::new(initial)) })
    }

    /// The serving feature schema.
    pub fn schema(&self) -> &ServeSchema {
        &self.schema
    }

    /// The artifact directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current model version. Cheap: one `Arc` clone under a read
    /// lock held for nanoseconds — callers then predict lock-free.
    pub fn current(&self) -> Arc<LoadedModel> {
        self.current.read().expect("registry lock poisoned").clone()
    }

    /// Rescan the directory; if the highest-versioned artifact differs
    /// from the current version, validate and atomically swap it in.
    /// Returns the now-current version. On any error the previous model
    /// keeps serving.
    pub fn reload(&self) -> Result<String, RegistryError> {
        let latest_version = Self::latest_version(&self.dir)?;
        if latest_version == self.current().version {
            return Ok(latest_version);
        }
        let fresh = Self::load_version(&self.dir, &latest_version, &self.schema)?;
        let mut cur = self.current.write().expect("registry lock poisoned");
        *cur = Arc::new(fresh);
        Ok(cur.version.clone())
    }

    /// Versions available on disk, ascending.
    pub fn versions(&self) -> Result<Vec<String>, RegistryError> {
        Self::scan(&self.dir)
    }

    fn scan(dir: &Path) -> Result<Vec<String>, RegistryError> {
        let entries = std::fs::read_dir(dir)
            .map_err(|e| RegistryError::Io(format!("{}: {e}", dir.display())))?;
        let mut versions = Vec::new();
        for entry in entries {
            let path = entry.map_err(|e| RegistryError::Io(e.to_string()))?.path();
            if path.extension().and_then(|s| s.to_str()) == Some("json") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    versions.push(stem.to_string());
                }
            }
        }
        versions.sort();
        Ok(versions)
    }

    fn latest_version(dir: &Path) -> Result<String, RegistryError> {
        Self::scan(dir)?.pop().ok_or_else(|| RegistryError::Empty(dir.display().to_string()))
    }

    fn load_version(
        dir: &Path,
        version: &str,
        schema: &ServeSchema,
    ) -> Result<LoadedModel, RegistryError> {
        let path = dir.join(format!("{version}.json"));
        let text = std::fs::read_to_string(&path)
            .map_err(|e| RegistryError::Io(format!("{}: {e}", path.display())))?;
        let model = FittedModel::from_json(&text)
            .map_err(|e| RegistryError::Artifact(format!("{}: {e}", path.display())))?;
        schema.validate(&model)?;
        Ok(LoadedModel::new(version.to_string(), model))
    }

    fn load_latest(dir: &Path, schema: &ServeSchema) -> Result<LoadedModel, RegistryError> {
        Self::load_version(dir, &Self::latest_version(dir)?, schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdt_features::Dataset;
    use wdt_model::{FitConfig, ModelKind};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("wdt-registry-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    /// A model over the real prediction schema (15 features).
    fn schema_model(slope: f64) -> FittedModel {
        let schema = ServeSchema::prediction();
        let names = schema.names().to_vec();
        let w = schema.width();
        let x: Vec<Vec<f64>> =
            (0..120).map(|i| (0..w).map(|j| ((i * (j + 3)) % 17) as f64).collect()).collect();
        let y: Vec<f64> = x.iter().map(|r| slope * r[0] + 2.0 * r[1] + r[10]).collect();
        FittedModel::fit(&Dataset::new(names, x, y), ModelKind::Linear, &FitConfig::default())
            .expect("fit")
    }

    #[test]
    fn loads_highest_version_and_hot_swaps() {
        let dir = tmpdir("hot-swap");
        std::fs::write(dir.join("v0001.json"), schema_model(1.0).to_json()).unwrap();
        let reg = ModelRegistry::open(&dir, ServeSchema::prediction()).expect("open");
        assert_eq!(reg.current().version, "v0001");

        // The handle taken before the swap keeps working after it.
        let before = reg.current();
        std::fs::write(dir.join("v0002.json"), schema_model(5.0).to_json()).unwrap();
        assert_eq!(reg.reload().expect("reload"), "v0002");
        assert_eq!(reg.current().version, "v0002");
        let row = vec![1.0; reg.schema().width()];
        let old = before.model.predict_row(&row);
        let new = reg.current().model.predict_row(&row);
        assert!(old.is_finite() && new.is_finite());
        assert_ne!(old, new, "swapped model must actually differ");
        assert_eq!(reg.versions().unwrap(), vec!["v0001", "v0002"]);
    }

    #[test]
    fn reload_is_idempotent_without_new_artifacts() {
        let dir = tmpdir("idempotent");
        std::fs::write(dir.join("v1.json"), schema_model(1.0).to_json()).unwrap();
        let reg = ModelRegistry::open(&dir, ServeSchema::prediction()).unwrap();
        let a = reg.current();
        assert_eq!(reg.reload().unwrap(), "v1");
        // Same Arc — no churn when nothing changed.
        assert!(Arc::ptr_eq(&a, &reg.current()));
    }

    #[test]
    fn empty_directory_is_an_error() {
        let dir = tmpdir("empty");
        let err = ModelRegistry::open(&dir, ServeSchema::prediction()).err().expect("must fail");
        assert!(matches!(err, RegistryError::Empty(_)), "{err}");
    }

    #[test]
    fn corrupt_artifact_fails_cleanly_and_keeps_serving() {
        let dir = tmpdir("corrupt");
        std::fs::write(dir.join("v1.json"), schema_model(1.0).to_json()).unwrap();
        let reg = ModelRegistry::open(&dir, ServeSchema::prediction()).unwrap();
        std::fs::write(dir.join("v2.json"), "{\"kind\": \"gbdt\", trunca").unwrap();
        let err = reg.reload().expect_err("corrupt artifact must fail");
        assert!(matches!(err, RegistryError::Artifact(_)), "{err}");
        // Old model still current.
        assert_eq!(reg.current().version, "v1");
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        // A model trained on a layout the serving schema doesn't match:
        // two features named differently.
        let names = vec!["alpha".to_string(), "beta".to_string()];
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![(i % 13) as f64, (i % 7) as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] + r[1]).collect();
        let m =
            FittedModel::fit(&Dataset::new(names, x, y), ModelKind::Linear, &FitConfig::default())
                .unwrap();
        let err = ServeSchema::prediction().validate(&m).expect_err("must mismatch");
        assert!(matches!(err, RegistryError::Schema(_)), "{err}");

        let dir = tmpdir("mismatch");
        std::fs::write(dir.join("v1.json"), m.to_json()).unwrap();
        assert!(matches!(
            ModelRegistry::open(&dir, ServeSchema::prediction()),
            Err(RegistryError::Schema(_))
        ));
    }

    #[test]
    fn prediction_schema_matches_build_dataset_layout() {
        let schema = ServeSchema::prediction();
        assert_eq!(schema.width(), FEATURE_NAMES.len() - 1);
        assert!(!schema.names().iter().any(|n| n == "Nflt"));
        assert_eq!(schema.position()["Ksout"], 0);
    }
}
