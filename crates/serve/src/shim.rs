//! Minimal libc shim for readiness polling and the data-plane syscalls.
//!
//! The vendored-dependency policy rules out the `libc`/`mio`/`socket2`
//! crates, so the event loop declares the C entry points it needs
//! directly: `poll(2)` for readiness, `writev(2)` for coalesced
//! response flushes, and (Linux-only, with graceful fallbacks)
//! `SO_REUSEPORT` listeners plus `sched_setaffinity(2)` for the
//! multi-core bench protocol. Struct layouts and flag values for the
//! POSIX calls are fixed by POSIX and identical across the platforms we
//! build on (Linux, the BSDs, macOS); `nfds_t` is an unsigned long
//! everywhere we target. This mirrors the CLI's `signal(2)` shim, the
//! only other raw libc use in the workspace.

use std::io;

/// `struct pollfd` from `<poll.h>`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// File descriptor to watch (negative → ignored by the kernel).
    pub fd: i32,
    /// Requested events (`POLLIN` | `POLLOUT`).
    pub events: i16,
    /// Returned events, filled by the kernel.
    pub revents: i16,
}

/// Data may be read without blocking.
pub const POLLIN: i16 = 0x001;
/// Writing is possible without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (returned only; invalid in `events`).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (returned only).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (returned only).
pub const POLLNVAL: i16 = 0x020;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int)
        -> std::ffi::c_int;
}

/// Wait until any fd in `fds` is ready or `timeout_ms` elapses.
///
/// Returns the number of fds with non-zero `revents` (0 on timeout).
/// `EINTR` is reported as `Ok(0)` — callers loop anyway and re-evaluate
/// shutdown flags on every wakeup, which is exactly what a signal should
/// cause.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: `fds` is a valid, exclusively-borrowed slice of `#[repr(C)]`
    // pollfd structs; the kernel writes only `revents` within it.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

/// `struct iovec` from `<sys/uio.h>`.
#[repr(C)]
struct IoVec {
    base: *const u8,
    len: usize,
}

extern "C" {
    fn writev(fd: std::ffi::c_int, iov: *const IoVec, iovcnt: std::ffi::c_int) -> isize;
}

/// Write both slices to `fd` with a single `writev(2)` call.
///
/// The event loop's per-connection output buffer is a `VecDeque<u8>`,
/// whose contents may wrap around the ring — `as_slices()` yields two
/// runs. A vectored write flushes both with one syscall instead of one
/// `write` per run (or, before this existed, one per response). Returns
/// the number of bytes accepted, which may be short; the caller loops.
pub fn writev_fds(fd: i32, a: &[u8], b: &[u8]) -> io::Result<usize> {
    let mut iov =
        [IoVec { base: a.as_ptr(), len: a.len() }, IoVec { base: b.as_ptr(), len: b.len() }];
    let mut cnt = 0usize;
    if !a.is_empty() {
        cnt = 1;
    }
    if !b.is_empty() {
        iov[cnt] = IoVec { base: b.as_ptr(), len: b.len() };
        cnt += 1;
    }
    if cnt == 0 {
        return Ok(0);
    }
    // SAFETY: each iovec points into a live borrowed slice; the kernel
    // only reads `iov[..cnt]` and the pointed-to bytes.
    let rc = unsafe { writev(fd, iov.as_ptr(), cnt as std::ffi::c_int) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(rc as usize)
}

/// Bind a loopback listener with `SO_REUSEPORT` set (Linux only).
///
/// With `SO_REUSEPORT`, several listeners can bind the same port and
/// the kernel load-balances incoming connections across them — each
/// event-loop shard owns its own accept queue instead of racing its
/// siblings on one shared listener. `port == 0` asks the kernel for an
/// ephemeral port; callers read it back via `local_addr()` and bind the
/// remaining shards to the same number. On non-Linux platforms this
/// returns `Unsupported` and the event loop falls back to the shared
/// listener it used before sharded accept existed.
#[cfg(target_os = "linux")]
pub fn reuseport_listener(port: u16) -> io::Result<std::net::TcpListener> {
    use std::os::fd::FromRawFd;

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    const SO_REUSEPORT: i32 = 15;

    /// `struct sockaddr_in` from `<netinet/in.h>` (fields big-endian).
    #[repr(C)]
    struct SockAddrIn {
        family: u16,
        port: u16,
        addr: u32,
        zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockAddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    // SAFETY: plain syscalls on an fd we own; on any failure the fd is
    // closed before returning, and on success `TcpListener::from_raw_fd`
    // takes ownership of a valid listening socket.
    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let one: i32 = 1;
        for opt in [SO_REUSEADDR, SO_REUSEPORT] {
            if setsockopt(fd, SOL_SOCKET, opt, &one, 4) < 0 {
                let err = io::Error::last_os_error();
                close(fd);
                return Err(err);
            }
        }
        let sa = SockAddrIn {
            family: AF_INET as u16,
            port: port.to_be(),
            addr: u32::from_ne_bytes([127, 0, 0, 1]),
            zero: [0; 8],
        };
        if bind(fd, &sa, std::mem::size_of::<SockAddrIn>() as u32) < 0 || listen(fd, 1024) < 0 {
            let err = io::Error::last_os_error();
            close(fd);
            return Err(err);
        }
        Ok(std::net::TcpListener::from_raw_fd(fd))
    }
}

/// Non-Linux fallback: `SO_REUSEPORT` numbering differs per platform,
/// so sharded accept is simply reported unsupported.
#[cfg(not(target_os = "linux"))]
pub fn reuseport_listener(_port: u16) -> io::Result<std::net::TcpListener> {
    Err(io::Error::new(io::ErrorKind::Unsupported, "SO_REUSEPORT shim is Linux-only"))
}

/// Pin the calling thread (and every thread it spawns afterwards) to
/// `cpus` (Linux only). Used by the CLI's `--cores` flag so a bench run
/// can place the server and the load generator on disjoint cores.
#[cfg(target_os = "linux")]
pub fn set_affinity(cpus: &[usize]) -> io::Result<()> {
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    let mut mask = [0u64; 16]; // up to 1024 CPUs
    for &c in cpus {
        if c >= mask.len() * 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("cpu {c} out of range (max {})", mask.len() * 64 - 1),
            ));
        }
        mask[c / 64] |= 1 << (c % 64);
    }
    // SAFETY: pid 0 = calling thread; the kernel reads `cpusetsize`
    // bytes from the mask we own.
    let rc = unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Non-Linux fallback: affinity control is best-effort tooling for the
/// bench protocol, not a correctness requirement.
#[cfg(not(target_os = "linux"))]
pub fn set_affinity(_cpus: &[usize]) -> io::Result<()> {
    Err(io::Error::new(io::ErrorKind::Unsupported, "sched_setaffinity shim is Linux-only"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poll_times_out_on_quiet_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (conn, _) = listener.accept().unwrap();
        let mut fds = [PollFd { fd: conn.as_raw_fd(), events: POLLIN, revents: 0 }];
        let n = poll_fds(&mut fds, 20).unwrap();
        assert_eq!(n, 0, "no data was sent");
        assert_eq!(fds[0].revents, 0);
    }

    #[test]
    fn poll_reports_readable_after_write() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (conn, _) = listener.accept().unwrap();
        client.write_all(b"x").unwrap();
        let mut fds = [PollFd { fd: conn.as_raw_fd(), events: POLLIN, revents: 0 }];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
    }

    #[test]
    fn writev_flushes_both_slices_in_one_call() {
        use std::io::Read;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (conn, _) = listener.accept().unwrap();
        let n = writev_fds(conn.as_raw_fd(), b"hello ", b"world").unwrap();
        assert_eq!(n, 11);
        let mut got = [0u8; 11];
        client.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello world");
        // Empty halves degrade gracefully.
        assert_eq!(writev_fds(conn.as_raw_fd(), b"", b"!").unwrap(), 1);
        assert_eq!(writev_fds(conn.as_raw_fd(), b"?", b"").unwrap(), 1);
        assert_eq!(writev_fds(conn.as_raw_fd(), b"", b"").unwrap(), 0);
        let mut got = [0u8; 2];
        client.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"!?");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reuseport_listeners_share_a_port() {
        let first = reuseport_listener(0).unwrap();
        let port = first.local_addr().unwrap().port();
        let second = reuseport_listener(port).unwrap();
        assert_eq!(second.local_addr().unwrap().port(), port);
        // Connections land on one of the two queues; accept with a
        // short poll on each to find it.
        let _client = TcpStream::connect(("127.0.0.1", port)).unwrap();
        first.set_nonblocking(true).unwrap();
        second.set_nonblocking(true).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        let mut accepted = false;
        while std::time::Instant::now() < deadline {
            for l in [&first, &second] {
                if l.accept().is_ok() {
                    accepted = true;
                }
            }
            if accepted {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(accepted, "connection reached neither reuseport listener");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn set_affinity_accepts_current_cpu() {
        // CPU 0 always exists; pinning to it must succeed.
        set_affinity(&[0]).unwrap();
        assert!(set_affinity(&[100_000]).is_err(), "out-of-range cpu must be rejected");
    }

    #[test]
    fn poll_reports_writable_and_hup() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (conn, _) = listener.accept().unwrap();
        // A fresh socket with an empty send buffer is writable.
        let mut fds = [PollFd { fd: conn.as_raw_fd(), events: POLLOUT, revents: 0 }];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert_ne!(fds[0].revents & POLLOUT, 0);
        // After the peer closes, POLLIN fires (read returns EOF).
        drop(client);
        let mut fds = [PollFd { fd: conn.as_raw_fd(), events: POLLIN, revents: 0 }];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert_ne!(fds[0].revents & (POLLIN | POLLHUP), 0);
    }
}
