//! Minimal libc shim for readiness polling.
//!
//! The vendored-dependency policy rules out the `libc`/`mio` crates, so
//! the event loop declares the one C entry point it needs — `poll(2)` —
//! directly. The struct layout and flag values are fixed by POSIX and
//! identical across the platforms we build on (Linux, the BSDs, macOS);
//! `nfds_t` is an unsigned long everywhere we target. This mirrors the
//! CLI's `signal(2)` shim, the only other raw libc use in the workspace.

use std::io;

/// `struct pollfd` from `<poll.h>`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// File descriptor to watch (negative → ignored by the kernel).
    pub fd: i32,
    /// Requested events (`POLLIN` | `POLLOUT`).
    pub events: i16,
    /// Returned events, filled by the kernel.
    pub revents: i16,
}

/// Data may be read without blocking.
pub const POLLIN: i16 = 0x001;
/// Writing is possible without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (returned only; invalid in `events`).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (returned only).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (returned only).
pub const POLLNVAL: i16 = 0x020;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int)
        -> std::ffi::c_int;
}

/// Wait until any fd in `fds` is ready or `timeout_ms` elapses.
///
/// Returns the number of fds with non-zero `revents` (0 on timeout).
/// `EINTR` is reported as `Ok(0)` — callers loop anyway and re-evaluate
/// shutdown flags on every wakeup, which is exactly what a signal should
/// cause.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: `fds` is a valid, exclusively-borrowed slice of `#[repr(C)]`
    // pollfd structs; the kernel writes only `revents` within it.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poll_times_out_on_quiet_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (conn, _) = listener.accept().unwrap();
        let mut fds = [PollFd { fd: conn.as_raw_fd(), events: POLLIN, revents: 0 }];
        let n = poll_fds(&mut fds, 20).unwrap();
        assert_eq!(n, 0, "no data was sent");
        assert_eq!(fds[0].revents, 0);
    }

    #[test]
    fn poll_reports_readable_after_write() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (conn, _) = listener.accept().unwrap();
        client.write_all(b"x").unwrap();
        let mut fds = [PollFd { fd: conn.as_raw_fd(), events: POLLIN, revents: 0 }];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
    }

    #[test]
    fn poll_reports_writable_and_hup() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (conn, _) = listener.accept().unwrap();
        // A fresh socket with an empty send buffer is writable.
        let mut fds = [PollFd { fd: conn.as_raw_fd(), events: POLLOUT, revents: 0 }];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert_ne!(fds[0].revents & POLLOUT, 0);
        // After the peer closes, POLLIN fires (read returns EOF).
        drop(client);
        let mut fds = [PollFd { fd: conn.as_raw_fd(), events: POLLIN, revents: 0 }];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert_ne!(fds[0].revents & (POLLIN | POLLHUP), 0);
    }
}
