//! Closed- and open-loop load generation against a running service.
//!
//! Replays engineered feature vectors (typically from a simulated
//! campaign) as `POST /predict` bodies over keep-alive connections and
//! reports achieved throughput plus latency percentiles.
//!
//! * **Closed loop** — `concurrency` connections, each issuing its next
//!   request the moment the previous response lands. Measures capacity:
//!   the throughput number quoted in BENCH_serve.json.
//! * **Open loop** — requests are launched on a fixed schedule at
//!   `rate_rps` across the connections regardless of completions
//!   (approximated per-connection: a connection that falls behind its
//!   schedule fires immediately). Measures latency under a target load,
//!   the way arrivals actually behave in production.
//!
//! Shed responses (HTTP 503 from admission control) are counted
//! separately from errors: shedding is the service *working as designed*
//! under overload.

use crate::client::HttpClient;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wdt_types::{Histogram, JsonValue};

/// Arrival discipline.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadgenMode {
    /// `concurrency` synchronous connections, zero think time.
    Closed {
        /// Concurrent connections.
        concurrency: usize,
    },
    /// Paced arrivals totalling `rate_rps` across `connections`.
    Open {
        /// Target aggregate arrival rate, requests/second.
        rate_rps: f64,
        /// Connections the schedule is striped over.
        connections: usize,
    },
}

/// Load-generation run configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Total predictions to issue.
    pub requests: usize,
    /// Arrival discipline.
    pub mode: LoadgenMode,
    /// HTTP/1.1 pipelining depth: each connection writes this many
    /// requests in one burst, then reads the answers in order. 1 (the
    /// default) is classic one-at-a-time closed-loop traffic; deeper
    /// pipelines measure the server's batch capacity the way a
    /// scheduler scoring many candidate transfers at once drives it.
    pub pipeline: usize,
    /// Warm-up: this many successful responses (striped across the
    /// connections like the request budget) are excluded from the
    /// latency histogram, so cold caches, first-touch page faults, and
    /// buffer growth on both sides don't pollute the tail percentiles.
    /// They still count toward `ok` and throughput.
    pub warmup: usize,
}

/// Results of one run.
#[derive(Debug)]
pub struct LoadgenReport {
    /// Echo of the discipline ("closed" / "open").
    pub mode: String,
    /// Connections used.
    pub connections: usize,
    /// Target rate for open loop (0 for closed).
    pub target_rps: f64,
    /// Pipelining depth used.
    pub pipeline: usize,
    /// Requests issued.
    pub requests: u64,
    /// 200 responses.
    pub ok: u64,
    /// 503 responses (admission control).
    pub shed: u64,
    /// Transport failures and non-200/503 statuses.
    pub errors: u64,
    /// Wall-clock run time, seconds.
    pub duration_s: f64,
    /// Completed requests (ok + shed) per second.
    pub throughput_rps: f64,
    /// Successful responses excluded from the latency histogram.
    pub warmup: u64,
    /// Latency distribution over *successful* predictions after the
    /// warm-up discard, µs.
    pub latency_us: Histogram,
}

impl LoadgenReport {
    /// Serialize for BENCH_serve.json.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("mode", JsonValue::Str(self.mode.clone())),
            ("connections", JsonValue::Num(self.connections as f64)),
            ("target_rps", JsonValue::Num(self.target_rps)),
            ("pipeline", JsonValue::Num(self.pipeline as f64)),
            ("requests", JsonValue::Num(self.requests as f64)),
            ("ok", JsonValue::Num(self.ok as f64)),
            ("shed", JsonValue::Num(self.shed as f64)),
            ("errors", JsonValue::Num(self.errors as f64)),
            ("duration_s", JsonValue::Num(self.duration_s)),
            ("throughput_rps", JsonValue::Num(self.throughput_rps)),
            ("warmup", JsonValue::Num(self.warmup as f64)),
            ("latency_us", self.latency_us.summary_json()),
        ])
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} loop × {}{}: {:.0} req/s over {:.2}s ({} ok, {} shed, {} errors); \
             latency µs p50 {} p95 {} p99 {} max {}",
            self.mode,
            self.connections,
            if self.pipeline > 1 {
                format!(" (pipeline {})", self.pipeline)
            } else {
                String::new()
            },
            self.throughput_rps,
            self.duration_s,
            self.ok,
            self.shed,
            self.errors,
            self.latency_us.quantile(0.50),
            self.latency_us.quantile(0.95),
            self.latency_us.quantile(0.99),
            self.latency_us.max(),
        ) + &if self.warmup > 0 {
            format!(" [{} warm-up discarded]", self.warmup)
        } else {
            String::new()
        }
    }
}

struct ThreadTally {
    ok: u64,
    shed: u64,
    errors: u64,
    latency: Histogram,
}

/// Render feature rows into reusable request bodies.
fn render_bodies(names: &[String], rows: &[Vec<f64>]) -> Vec<String> {
    rows.iter()
        .map(|row| {
            JsonValue::Obj(
                names.iter().cloned().zip(row.iter().map(|&v| JsonValue::Num(v))).collect(),
            )
            .to_string()
        })
        .collect()
}

/// Run a load generation campaign. `rows` are feature vectors in the
/// server's schema order with `names` as the feature names; they are
/// replayed round-robin until `cfg.requests` predictions have been sent.
pub fn run_loadgen(
    cfg: &LoadgenConfig,
    names: &[String],
    rows: &[Vec<f64>],
) -> std::io::Result<LoadgenReport> {
    if rows.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "no feature rows to replay",
        ));
    }
    let bodies = Arc::new(render_bodies(names, rows));
    let (mode_name, connections, target_rps) = match cfg.mode {
        LoadgenMode::Closed { concurrency } => ("closed", concurrency.max(1), 0.0),
        LoadgenMode::Open { rate_rps, connections } => ("open", connections.max(1), rate_rps),
    };
    // Stripe the request and warm-up budgets over connections.
    let per_thread: Vec<(usize, usize)> = (0..connections)
        .map(|t| {
            (
                cfg.requests / connections + usize::from(t < cfg.requests % connections),
                cfg.warmup / connections + usize::from(t < cfg.warmup % connections),
            )
        })
        .collect();

    let pipeline = cfg.pipeline.max(1);
    let started = Instant::now();
    let threads: Vec<_> = per_thread
        .into_iter()
        .enumerate()
        .map(|(t, (quota, warmup))| {
            let bodies = bodies.clone();
            let addr = cfg.addr;
            let pace = match cfg.mode {
                LoadgenMode::Closed { .. } => None,
                LoadgenMode::Open { rate_rps, connections } => {
                    Some(Duration::from_secs_f64(connections.max(1) as f64 / rate_rps.max(1e-9)))
                }
            };
            std::thread::spawn(move || client_loop(addr, &bodies, t, quota, warmup, pace, pipeline))
        })
        .collect();

    let mut ok = 0u64;
    let mut shed = 0u64;
    let mut errors = 0u64;
    let latency = Histogram::new();
    for t in threads {
        let tally = t.join().expect("loadgen thread panicked");
        ok += tally.ok;
        shed += tally.shed;
        errors += tally.errors;
        latency.merge(&tally.latency);
    }
    let duration_s = started.elapsed().as_secs_f64().max(1e-9);
    Ok(LoadgenReport {
        mode: mode_name.to_string(),
        connections,
        target_rps,
        pipeline,
        requests: cfg.requests as u64,
        ok,
        shed,
        errors,
        duration_s,
        throughput_rps: (ok + shed) as f64 / duration_s,
        warmup: cfg.warmup.min(cfg.requests) as u64,
        latency_us: latency,
    })
}

fn client_loop(
    addr: SocketAddr,
    bodies: &[String],
    thread_idx: usize,
    quota: usize,
    mut warmup: usize,
    pace: Option<Duration>,
    pipeline: usize,
) -> ThreadTally {
    let mut tally = ThreadTally { ok: 0, shed: 0, errors: 0, latency: Histogram::new() };
    let mut client = HttpClient::connect(addr).ok();
    let epoch = Instant::now();
    let mut k = 0usize;
    while k < quota {
        // Open loop: wait for this burst's scheduled slot (connections
        // are phase-shifted so aggregate arrivals are evenly spaced).
        if let Some(step) = pace {
            let due = epoch + step.mul_f64(k as f64) + step.mul_f64(thread_idx as f64 / 8.0);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        let depth = pipeline.min(quota - k);
        let burst: Vec<&str> = (0..depth)
            .map(|d| bodies[(thread_idx + (k + d) * 7919) % bodies.len()].as_str())
            .collect();
        k += depth;
        // One reconnect attempt per burst keeps a dropped keep-alive
        // connection from poisoning the rest of the run.
        if client.is_none() {
            client = HttpClient::connect(addr).ok();
        }
        let Some(c) = client.as_mut() else {
            tally.errors += depth as u64;
            continue;
        };
        let sent = Instant::now();
        if c.send_many("POST", "/predict", &burst).is_err() {
            tally.errors += depth as u64;
            client = None;
            continue;
        }
        for d in 0..depth {
            // Status-only read: the generator's own body parsing would
            // allocate per response and (on a shared core) bill the
            // server for it.
            match c.read_status_discard_body() {
                Ok(200) => {
                    tally.ok += 1;
                    if warmup > 0 {
                        // Warm-up responses count, but their latency
                        // (cold caches, buffer growth) is discarded.
                        warmup -= 1;
                    } else {
                        tally.latency.record(sent.elapsed().as_micros() as u64);
                    }
                }
                Ok(503) => tally.shed += 1,
                Ok(_) => tally.errors += 1,
                Err(_) => {
                    // The rest of the burst dies with the connection.
                    tally.errors += (depth - d) as u64;
                    client = None;
                    break;
                }
            }
        }
    }
    tally
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ModelRegistry, ServeSchema};
    use crate::server::{ServeConfig, Server};
    use wdt_features::Dataset;
    use wdt_model::{FitConfig, FittedModel, ModelKind};

    fn start_server(name: &str) -> Arc<Server> {
        let dir = std::env::temp_dir().join("wdt-loadgen-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let schema = ServeSchema::prediction();
        let w = schema.width();
        let x: Vec<Vec<f64>> =
            (0..150).map(|i| (0..w).map(|j| ((i + j) % 11) as f64).collect()).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] + 4.0 * r[2]).collect();
        let m = FittedModel::fit(
            &Dataset::new(schema.names().to_vec(), x, y),
            ModelKind::Gbdt,
            &FitConfig::default(),
        )
        .unwrap();
        std::fs::write(dir.join("v1.json"), m.to_json()).unwrap();
        let registry = Arc::new(ModelRegistry::open(dir, schema).unwrap());
        Server::start(registry, ServeConfig::default()).unwrap()
    }

    fn sample_rows(server: &Server, n: usize) -> (Vec<String>, Vec<Vec<f64>>) {
        let names = server.registry().schema().names().to_vec();
        let w = names.len();
        let rows =
            (0..n).map(|i| (0..w).map(|j| ((i * 3 + j) % 13) as f64 / 2.0).collect()).collect();
        (names, rows)
    }

    #[test]
    fn closed_loop_accounts_for_every_request() {
        let server = start_server("closed");
        let (names, rows) = sample_rows(&server, 32);
        let cfg = LoadgenConfig {
            addr: server.addr(),
            requests: 200,
            mode: LoadgenMode::Closed { concurrency: 4 },
            pipeline: 1,
            warmup: 0,
        };
        let report = run_loadgen(&cfg, &names, &rows).expect("loadgen");
        assert_eq!(report.ok + report.shed + report.errors, 200);
        assert_eq!(report.errors, 0, "loopback run must not error");
        assert!(report.throughput_rps > 0.0);
        assert_eq!(report.latency_us.count(), report.ok);
        let json = JsonValue::parse(&report.to_json().to_string()).unwrap();
        assert_eq!(json.field("ok").unwrap().as_usize().unwrap() as u64, report.ok);
        assert!(report.summary().contains("closed loop"));
        server.shutdown();
    }

    #[test]
    fn warmup_responses_are_excluded_from_latency_only() {
        let server = start_server("warmup");
        let (names, rows) = sample_rows(&server, 16);
        let cfg = LoadgenConfig {
            addr: server.addr(),
            requests: 120,
            mode: LoadgenMode::Closed { concurrency: 3 },
            pipeline: 4,
            warmup: 30,
        };
        let report = run_loadgen(&cfg, &names, &rows).expect("loadgen");
        assert_eq!(report.ok + report.shed + report.errors, 120);
        assert_eq!(report.errors, 0, "loopback run must not error");
        assert_eq!(report.warmup, 30);
        // Warm-up responses still count as ok/throughput, but each
        // thread drops its stripe of the first latencies.
        assert_eq!(report.latency_us.count(), report.ok - 30);
        assert!(report.summary().contains("warm-up"));
        let json = JsonValue::parse(&report.to_json().to_string()).unwrap();
        assert_eq!(json.field("warmup").unwrap().as_usize().unwrap(), 30);
        server.shutdown();
    }

    #[test]
    fn open_loop_paces_arrivals() {
        let server = start_server("open");
        let (names, rows) = sample_rows(&server, 8);
        let cfg = LoadgenConfig {
            addr: server.addr(),
            requests: 50,
            mode: LoadgenMode::Open { rate_rps: 500.0, connections: 2 },
            pipeline: 1,
            warmup: 0,
        };
        let started = Instant::now();
        let report = run_loadgen(&cfg, &names, &rows).expect("loadgen");
        // 50 requests at 500/s ⇒ the schedule alone takes ≥ ~0.1s.
        assert!(started.elapsed() >= Duration::from_millis(80), "open loop did not pace");
        assert_eq!(report.ok + report.shed + report.errors, 50);
        assert_eq!(report.mode, "open");
        server.shutdown();
    }
}
