//! A minimal keep-alive HTTP/1.1 client for the load generator, the CLI,
//! and integration tests.
//!
//! One [`HttpClient`] owns one TCP connection and issues requests
//! serially, reusing the connection (`Connection: keep-alive`) so
//! closed-loop load generation measures the server, not the TCP
//! handshake. Request heads, response heads, and discarded bodies all
//! pass through buffers owned by the client, so a warmed-up loadgen
//! connection issues its steady-state traffic without heap allocations —
//! on a shared core the generator's allocator traffic would otherwise
//! show up in the *server's* benchmark numbers.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A serial keep-alive connection to the prediction service.
pub struct HttpClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Request-rendering buffer reused across [`HttpClient::send_many`].
    send_buf: Vec<u8>,
    /// Head-line buffer reused across response reads.
    head_buf: Vec<u8>,
    /// Body sink for [`HttpClient::read_status_discard_body`].
    body_buf: Vec<u8>,
}

impl HttpClient {
    /// Connect to `addr` with a generous I/O timeout.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Self::connect_timeout(addr, Duration::from_secs(10))
    }

    /// Connect with explicit connect/read timeouts.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(HttpClient {
            writer: stream,
            reader,
            send_buf: Vec::new(),
            head_buf: Vec::new(),
            body_buf: Vec::new(),
        })
    }

    /// Issue `GET path` → (status, body).
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path, "")
    }

    /// Issue `POST path` with a JSON body → (status, body).
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.request("POST", path, body)
    }

    /// Issue one request and read the full response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, String)> {
        self.send_many(method, path, &[body])?;
        self.read_response()
    }

    /// Write `bodies.len()` pipelined requests in **one** buffer and one
    /// write. With TCP_NODELAY set, separate writes would each leave the
    /// wire as their own packet and cost the server a read (and the
    /// event loop a wakeup) apiece; a pipelined burst arrives as one
    /// segment the server can parse, batch, and answer in one pass. Pair
    /// with exactly one [`HttpClient::read_response`] (or
    /// [`HttpClient::read_status_discard_body`]) per request — HTTP/1.1
    /// answers pipelined requests in order. The render buffer is owned
    /// by the client and reused, so repeat bursts allocate nothing.
    pub fn send_many(&mut self, method: &str, path: &str, bodies: &[&str]) -> std::io::Result<()> {
        self.send_buf.clear();
        for body in bodies {
            self.send_buf.extend_from_slice(method.as_bytes());
            self.send_buf.push(b' ');
            self.send_buf.extend_from_slice(path.as_bytes());
            self.send_buf.extend_from_slice(
                b" HTTP/1.1\r\nHost: wdt\r\nContent-Type: application/json\r\nContent-Length: ",
            );
            // Integer formatting via core::fmt writes through a stack
            // buffer — no heap.
            let _ = write!(self.send_buf, "{}", body.len());
            self.send_buf.extend_from_slice(b"\r\n\r\n");
            self.send_buf.extend_from_slice(body.as_bytes());
        }
        self.writer.write_all(&self.send_buf)?;
        self.writer.flush()
    }

    /// Read one head line (through `\n`) into the reusable head buffer.
    fn read_head_line(&mut self) -> std::io::Result<()> {
        self.head_buf.clear();
        let n = self.reader.read_until(b'\n', &mut self.head_buf)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed connection",
            ));
        }
        Ok(())
    }

    /// Read one response, returning only the status and discarding the
    /// body into a reusable buffer — the zero-allocation read path the
    /// load generator drives the benchmark with. (Parsing the body
    /// would measure the client; the server's own parity is asserted
    /// separately, end to end, in the integration tests.)
    pub fn read_status_discard_body(&mut self) -> std::io::Result<u16> {
        self.read_status_into_body().map(|(status, _)| status)
    }

    /// Shared read path: parse the head, read the body into the reusable
    /// buffer, return (status, body length).
    fn read_status_into_body(&mut self) -> std::io::Result<(u16, usize)> {
        self.read_head_line()?;
        // "HTTP/1.1 200 OK" — status = the token after the first space.
        let status = parse_status(&self.head_buf).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
        })?;
        let mut content_length = 0usize;
        loop {
            self.read_head_line()?;
            let line = trim_crlf(&self.head_buf);
            if line.is_empty() {
                break;
            }
            if let Some(v) = header_value(line, b"content-length") {
                content_length = parse_decimal(v).ok_or_else(|| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
        if self.body_buf.len() < content_length {
            self.body_buf.resize(content_length, 0);
        }
        self.reader.read_exact(&mut self.body_buf[..content_length])?;
        Ok((status, content_length))
    }

    /// Read one response → (status, body).
    pub fn read_response(&mut self) -> std::io::Result<(u16, String)> {
        let (status, len) = self.read_status_into_body()?;
        std::str::from_utf8(&self.body_buf[..len])
            .map(|b| (status, b.to_string()))
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 body"))
    }
}

/// Trim a trailing `\r\n` (or lone `\n`) from a head line.
fn trim_crlf(line: &[u8]) -> &[u8] {
    let line = line.strip_suffix(b"\n").unwrap_or(line);
    line.strip_suffix(b"\r").unwrap_or(line)
}

/// `"HTTP/1.1 200 OK"` → `200`.
fn parse_status(line: &[u8]) -> Option<u16> {
    let rest = &line[line.iter().position(|&b| b == b' ')? + 1..];
    let end = rest.iter().position(|&b| !b.is_ascii_digit()).unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    let mut v = 0u32;
    for &b in &rest[..end] {
        v = v * 10 + u32::from(b - b'0');
        if v > u32::from(u16::MAX) {
            return None;
        }
    }
    Some(v as u16)
}

/// Case-insensitive header lookup: `line` is one head line without CRLF;
/// returns the trimmed value when the name matches.
fn header_value<'a>(line: &'a [u8], name: &[u8]) -> Option<&'a [u8]> {
    let colon = line.iter().position(|&b| b == b':')?;
    let (n, v) = (trim_ascii(&line[..colon]), trim_ascii(&line[colon + 1..]));
    n.eq_ignore_ascii_case(name).then_some(v)
}

fn trim_ascii(mut b: &[u8]) -> &[u8] {
    while let [first, rest @ ..] = b {
        if first.is_ascii_whitespace() {
            b = rest;
        } else {
            break;
        }
    }
    while let [rest @ .., last] = b {
        if last.is_ascii_whitespace() {
            b = rest;
        } else {
            break;
        }
    }
    b
}

fn parse_decimal(b: &[u8]) -> Option<usize> {
    if b.is_empty() {
        return None;
    }
    let mut v = 0usize;
    for &d in b {
        if !d.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_add(usize::from(d - b'0'))?;
    }
    Some(v)
}
