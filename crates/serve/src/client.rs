//! A minimal keep-alive HTTP/1.1 client for the load generator, the CLI,
//! and integration tests.
//!
//! One [`HttpClient`] owns one TCP connection and issues requests
//! serially, reusing the connection (`Connection: keep-alive`) so
//! closed-loop load generation measures the server, not the TCP
//! handshake.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A serial keep-alive connection to the prediction service.
pub struct HttpClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    /// Connect to `addr` with a generous I/O timeout.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Self::connect_timeout(addr, Duration::from_secs(10))
    }

    /// Connect with explicit connect/read timeouts.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(HttpClient { writer: stream, reader })
    }

    /// Issue `GET path` → (status, body).
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path, "")
    }

    /// Issue `POST path` with a JSON body → (status, body).
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.request("POST", path, body)
    }

    /// Issue one request and read the full response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, String)> {
        self.send_many(method, path, &[body])?;
        self.read_response()
    }

    /// Write `bodies.len()` pipelined requests in **one** buffer and one
    /// write. With TCP_NODELAY set, separate writes would each leave the
    /// wire as their own packet and cost the server a read (and the
    /// event loop a wakeup) apiece; a pipelined burst arrives as one
    /// segment the server can parse, batch, and answer in one pass. Pair
    /// with exactly one [`HttpClient::read_response`] per request —
    /// HTTP/1.1 answers pipelined requests in order.
    pub fn send_many(&mut self, method: &str, path: &str, bodies: &[&str]) -> std::io::Result<()> {
        let mut buf = String::new();
        for body in bodies {
            buf.push_str(&format!(
                "{method} {path} HTTP/1.1\r\n\
                 Host: wdt\r\n\
                 Content-Type: application/json\r\n\
                 Content-Length: {}\r\n\
                 \r\n{body}",
                body.len()
            ));
        }
        self.writer.write_all(buf.as_bytes())?;
        self.writer.flush()
    }

    /// Read one response → (status, body).
    pub fn read_response(&mut self) -> std::io::Result<(u16, String)> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed connection",
            ));
        }
        // "HTTP/1.1 200 OK"
        let status: u16 =
            line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line {line:?}"),
                )
            })?;
        let mut content_length = 0usize;
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "truncated response head",
                ));
            }
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("bad content-length {value:?}"),
                        )
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body)
            .map(|b| (status, b))
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 body"))
    }
}
