//! Routing and response shaping shared by both HTTP front ends.
//!
//! The blocking worker pool (`server.rs`) and the nonblocking event loop
//! (`eventloop.rs`) differ only in how bytes and replies move; *what* a
//! request means is defined once, here. [`route`] classifies a parsed
//! request into either an immediately-renderable response or a prediction
//! row to hand to the batcher — the front end decides whether to wait for
//! the reply (blocking) or to attach a completion callback (event loop).
//!
//! Metrics discipline: `route` bumps only the per-endpoint counters. The
//! request/shed/error counters move in `ServerMetrics::on_response`,
//! which each front end calls exactly once per response it writes.

use crate::batcher::{Batcher, Prediction, SubmitError};
use crate::http::{HttpError, Request};
use crate::metrics::ServerMetrics;
use crate::registry::ModelRegistry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use wdt_types::JsonValue;

/// Shared state both front ends operate on.
pub(crate) struct Ctx {
    pub registry: Arc<ModelRegistry>,
    pub batcher: Arc<Batcher>,
    pub metrics: Arc<ServerMetrics>,
    pub stopping: Arc<AtomicBool>,
}

/// What to do with a parsed request.
pub(crate) enum Routed {
    /// Fully-formed response: status, reason, JSON body.
    Done(u16, &'static str, String),
    /// A `/predict` row admitted past validation; the caller submits it
    /// to the batcher its own way.
    Predict(Vec<f64>),
}

/// Dispatch one request. Admin endpoints are answered inline; `/predict`
/// is parsed and validated here but submitted by the caller.
pub(crate) fn route(req: &Request, ctx: &Ctx) -> Routed {
    ctx.metrics.on_route(&req.method, &req.path);
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/predict") => match parse_feature_row(&req.body, ctx) {
            Ok(row) => Routed::Predict(row),
            Err(msg) => Routed::Done(400, "Bad Request", error_body(&msg)),
        },
        ("GET", "/healthz") => {
            let version = ctx.registry.current().version.clone();
            let body = JsonValue::obj([
                ("status", JsonValue::Str("ok".into())),
                ("version", JsonValue::Str(version)),
            ])
            .to_string();
            Routed::Done(200, "OK", body)
        }
        ("GET", "/metrics") => {
            let mut m = ctx.metrics.to_json();
            if let JsonValue::Obj(map) = &mut m {
                map.insert("queue_depth".into(), JsonValue::Num(ctx.batcher.queue_depth() as f64));
                map.insert(
                    "version".into(),
                    JsonValue::Str(ctx.registry.current().version.clone()),
                );
            }
            Routed::Done(200, "OK", m.to_string())
        }
        ("POST", "/reload") => match ctx.registry.reload() {
            Ok(version) => {
                let body = JsonValue::obj([("version", JsonValue::Str(version))]).to_string();
                Routed::Done(200, "OK", body)
            }
            Err(e) => Routed::Done(500, "Internal Server Error", error_body(&e.to_string())),
        },
        ("POST", "/shutdown") => {
            ctx.stopping.store(true, Ordering::SeqCst);
            Routed::Done(
                200,
                "OK",
                JsonValue::obj([("status", JsonValue::Str("stopping".into()))]).to_string(),
            )
        }
        _ => Routed::Done(
            404,
            "Not Found",
            error_body(&format!("no route {} {}", req.method, req.path)),
        ),
    }
}

/// Response for a completed prediction (covers the non-finite guard).
pub(crate) fn prediction_response(p: &Prediction) -> (u16, &'static str, String) {
    if !p.rate.is_finite() {
        return (500, "Internal Server Error", error_body("non-finite prediction"));
    }
    let body = JsonValue::obj([
        ("rate", JsonValue::Num(p.rate)),
        ("version", JsonValue::Str(p.version.to_string())),
        ("batch_size", JsonValue::Num(p.batch_size as f64)),
    ])
    .to_string();
    (200, "OK", body)
}

/// Response for a refused batcher submission.
pub(crate) fn submit_error_response(e: &SubmitError) -> (u16, &'static str, String) {
    match e {
        SubmitError::Overloaded => (503, "Service Unavailable", error_body("overloaded")),
        SubmitError::ShuttingDown => (503, "Service Unavailable", error_body("shutting down")),
    }
}

/// Response for a protocol error that still gets an answer before the
/// connection closes. `Idle`/`Truncated`/`Io` are not answerable and must
/// be handled by the front end (returns `None`).
pub(crate) fn protocol_error_response(e: &HttpError) -> Option<(u16, &'static str, String)> {
    match e {
        HttpError::Deadline => Some((408, "Request Timeout", error_body(&e.to_string()))),
        HttpError::TooLarge(_) => Some((413, "Payload Too Large", error_body(&e.to_string()))),
        HttpError::Malformed(_) => Some((400, "Bad Request", error_body(&e.to_string()))),
        HttpError::Idle | HttpError::Truncated | HttpError::Io(_) => None,
    }
}

pub(crate) fn error_body(msg: &str) -> String {
    JsonValue::obj([("error", JsonValue::Str(msg.to_string()))]).to_string()
}

/// Body `{"<feature>": <num>, …}` → serving-schema row. Missing features
/// are 0.0; unknown names and non-finite values are client errors.
pub(crate) fn parse_feature_row(body: &[u8], ctx: &Ctx) -> Result<Vec<f64>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    let parsed = JsonValue::parse(text).map_err(|e| e.to_string())?;
    let JsonValue::Obj(map) = parsed else {
        return Err("body must be a JSON object of feature values".into());
    };
    let schema = ctx.registry.schema();
    let mut row = vec![0.0f64; schema.width()];
    for (name, value) in &map {
        let Some(&i) = schema.position().get(name) else {
            return Err(format!("unknown feature '{name}'"));
        };
        let v = value.as_f64().map_err(|_| format!("feature '{name}' must be a number"))?;
        if !v.is_finite() {
            return Err(format!("feature '{name}' is not finite"));
        }
        row[i] = v;
    }
    Ok(row)
}
