//! Routing and response shaping shared by both HTTP front ends.
//!
//! The blocking worker pool (`server.rs`) and the nonblocking event loop
//! (`eventloop.rs`) differ only in how bytes and replies move; *what* a
//! request means is defined once, here. [`route`] classifies a request
//! (method/path/body as byte slices — the event loop passes ranges into
//! its read buffer, the blocking front end passes its owned strings)
//! into either an immediately-renderable response or a prediction row to
//! hand to the batcher — the front end decides whether to wait for the
//! reply (blocking) or to attach a completion (event loop). The caller
//! supplies the row scratch, so the event loop can recycle row vectors
//! through its pool while the blocking path just hands over a fresh one.
//!
//! Metrics discipline: `route` bumps only the per-endpoint counters. The
//! request/shed/error counters move in `ServerMetrics::on_response`,
//! which each front end calls exactly once per response it writes.
//!
//! Response bodies are `Cow<'static, str>`: the fixed messages
//! (overload shed, shutdown, deadline, size limits, non-finite guard)
//! are precomputed `&'static str`s so an error storm — the one time
//! response volume spikes — allocates nothing, while dynamic bodies
//! (metrics, healthz, per-message 400s) stay owned strings.

use crate::batcher::{Batcher, Prediction, SubmitError};
use crate::http::{HttpError, Method};
use crate::metrics::ServerMetrics;
use crate::registry::ModelRegistry;
use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use wdt_types::json::{escape_into, format_f64};
use wdt_types::JsonValue;

/// A response body: static for the fixed messages, owned otherwise.
pub(crate) type Body = Cow<'static, str>;

/// `{"error":"overloaded"}` etc., precomputed. Each constant must equal
/// `error_body(<display text>)` — asserted in the tests below, so the
/// strings cannot drift from the `Display` impls they mirror.
pub(crate) const BODY_OVERLOADED: &str = "{\"error\":\"overloaded\"}";
pub(crate) const BODY_SHUTTING_DOWN: &str = "{\"error\":\"shutting down\"}";
pub(crate) const BODY_DEADLINE: &str = "{\"error\":\"request deadline expired\"}";
pub(crate) const BODY_HEADER_TOO_LARGE: &str = "{\"error\":\"header too large\"}";
pub(crate) const BODY_BODY_TOO_LARGE: &str = "{\"error\":\"body too large\"}";
pub(crate) const BODY_NON_FINITE: &str = "{\"error\":\"non-finite prediction\"}";

/// Shared state both front ends operate on.
pub(crate) struct Ctx {
    pub registry: Arc<ModelRegistry>,
    pub batcher: Arc<Batcher>,
    pub metrics: Arc<ServerMetrics>,
    pub stopping: Arc<AtomicBool>,
    /// How many top-|contribution| features `/explain` names explicitly.
    pub explain_top: usize,
}

/// What to do with a parsed request.
pub(crate) enum Routed {
    /// Fully-formed response: status, reason, JSON body.
    Done(u16, &'static str, Body),
    /// A `/predict` row admitted past validation into the caller's `row`
    /// scratch; the caller submits it to the batcher its own way.
    Predict,
    /// An `/explain` row: same admission as `Predict`, but the caller
    /// requests per-feature attributions alongside the prediction.
    Explain,
}

/// Dispatch one request. Admin endpoints are answered inline; `/predict`
/// is parsed into `row` here but submitted by the caller.
pub(crate) fn route(
    method: Method,
    method_bytes: &[u8],
    path: &[u8],
    body: &[u8],
    ctx: &Ctx,
    row: &mut Vec<f64>,
) -> Routed {
    // Method/path reached us through the head's UTF-8 check; the lossy
    // conversion never actually copies.
    let method_str = std::str::from_utf8(method_bytes).unwrap_or("?");
    let path_str = std::str::from_utf8(path).unwrap_or("?");
    ctx.metrics.on_route(method_str, path_str);
    match (method, path) {
        (Method::Post, b"/predict") => {
            match crate::rowscan::scan_feature_row(body, ctx.registry.schema(), row) {
                Ok(()) => Routed::Predict,
                Err(msg) => Routed::Done(400, "Bad Request", error_body(&msg).into()),
            }
        }
        (Method::Post, b"/explain") => {
            match crate::rowscan::scan_feature_row(body, ctx.registry.schema(), row) {
                Ok(()) => Routed::Explain,
                Err(msg) => Routed::Done(400, "Bad Request", error_body(&msg).into()),
            }
        }
        (Method::Get, b"/alerts") => {
            Routed::Done(200, "OK", wdt_obs::AlertSink::global().to_json().to_string().into())
        }
        (Method::Get, b"/metrics.prom") => {
            // Server-local serve.* series plus the process-global
            // registry (alert counters, sim/ingest metrics); name
            // prefixes keep the two namespaces disjoint.
            let mut text = ctx.metrics.to_prometheus();
            text.push_str(&wdt_obs::Registry::global().to_prometheus());
            Routed::Done(200, "OK", text.into())
        }
        (Method::Get, b"/healthz") => {
            let version = ctx.registry.current().version.clone();
            let body = JsonValue::obj([
                ("status", JsonValue::Str("ok".into())),
                ("version", JsonValue::Str(version)),
            ])
            .to_string();
            Routed::Done(200, "OK", body.into())
        }
        (Method::Get, b"/metrics") => {
            let mut m = ctx.metrics.to_json();
            if let JsonValue::Obj(map) = &mut m {
                map.insert("queue_depth".into(), JsonValue::Num(ctx.batcher.queue_depth() as f64));
                map.insert(
                    "version".into(),
                    JsonValue::Str(ctx.registry.current().version.clone()),
                );
            }
            Routed::Done(200, "OK", m.to_string().into())
        }
        (Method::Post, b"/reload") => match ctx.registry.reload() {
            Ok(version) => {
                let body = JsonValue::obj([("version", JsonValue::Str(version))]).to_string();
                Routed::Done(200, "OK", body.into())
            }
            Err(e) => Routed::Done(500, "Internal Server Error", error_body(&e.to_string()).into()),
        },
        (Method::Post, b"/shutdown") => {
            ctx.stopping.store(true, Ordering::SeqCst);
            Routed::Done(
                200,
                "OK",
                JsonValue::obj([("status", JsonValue::Str("stopping".into()))]).to_string().into(),
            )
        }
        _ => Routed::Done(
            404,
            "Not Found",
            error_body(&format!("no route {method_str} {path_str}")).into(),
        ),
    }
}

/// Append the wire body for a completed prediction to `out` —
/// `{"batch_size":N,"rate":R,"version":"V"}`, the exact bytes the
/// sorted-map `JsonValue` rendering produced (same key order, same
/// [`format_f64`] number spelling, same [`escape_into`] escaping), but
/// into a reusable buffer. Callers must have handled the non-finite
/// guard first.
pub(crate) fn prediction_body(p: &Prediction, out: &mut String) {
    out.push_str("{\"batch_size\":");
    format_f64(p.batch_size as f64, out);
    out.push_str(",\"rate\":");
    format_f64(p.rate, out);
    out.push_str(",\"version\":");
    escape_into(&p.version, out);
    out.push('}');
}

/// Append the wire body for an explained prediction to `out` — flat
/// JSON, alphabetical keys, no nested objects (the body contains exactly
/// one `}`, which response-framing test clients rely on):
/// `{"bias":B,"contributions":[…],"features":[…],"prediction":P,`
/// `"top":[["name",c],…],"version":"V"}`. `contributions` is complete
/// and ordered like `features` (the model's kept columns), so
/// `bias + Σ contributions` folds to `prediction` bitwise; `top` names
/// the `top` largest-|contribution| features for human eyes. Callers
/// must have handled the non-finite guard first.
pub(crate) fn explain_body(p: &Prediction, top: usize, out: &mut String) {
    let e = p.explain.as_ref().expect("explain body without an explanation");
    out.push_str("{\"bias\":");
    format_f64(e.bias, out);
    out.push_str(",\"contributions\":[");
    for (i, c) in e.contributions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        format_f64(*c, out);
    }
    out.push_str("],\"features\":[");
    let names = e.model.model.feature_names();
    for (i, n) in names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(n, out);
    }
    out.push_str("],\"prediction\":");
    format_f64(p.rate, out);
    out.push_str(",\"top\":[");
    // Selection without allocation: repeated strict-`>` max scans over a
    // bitmask of already-chosen slots (first index wins ties). The mask
    // caps candidates at 128 features — far beyond any real schema.
    let k = top.min(e.contributions.len()).min(128);
    let mut chosen: u128 = 0;
    for rank in 0..k {
        let mut best: Option<usize> = None;
        for (j, c) in e.contributions.iter().enumerate().take(128) {
            if chosen & (1u128 << j) != 0 {
                continue;
            }
            if best.is_none_or(|b| c.abs() > e.contributions[b].abs()) {
                best = Some(j);
            }
        }
        let Some(j) = best else { break };
        chosen |= 1u128 << j;
        if rank > 0 {
            out.push(',');
        }
        out.push('[');
        escape_into(&names[j], out);
        out.push(',');
        format_f64(e.contributions[j], out);
        out.push(']');
    }
    out.push_str("],\"version\":");
    escape_into(&p.version, out);
    out.push('}');
}

/// Response for an explained prediction (covers the non-finite guard).
pub(crate) fn explain_response(p: &Prediction, top: usize) -> (u16, &'static str, Body) {
    if !p.rate.is_finite() {
        return (500, "Internal Server Error", BODY_NON_FINITE.into());
    }
    let mut body = String::with_capacity(256);
    explain_body(p, top, &mut body);
    (200, "OK", body.into())
}

/// Response for a completed prediction (covers the non-finite guard).
pub(crate) fn prediction_response(p: &Prediction) -> (u16, &'static str, Body) {
    if !p.rate.is_finite() {
        return (500, "Internal Server Error", BODY_NON_FINITE.into());
    }
    let mut body = String::with_capacity(64);
    prediction_body(p, &mut body);
    (200, "OK", body.into())
}

/// Response for a refused batcher submission.
pub(crate) fn submit_error_response(e: &SubmitError) -> (u16, &'static str, Body) {
    match e {
        SubmitError::Overloaded => (503, "Service Unavailable", BODY_OVERLOADED.into()),
        SubmitError::ShuttingDown => (503, "Service Unavailable", BODY_SHUTTING_DOWN.into()),
    }
}

/// Response for a protocol error that still gets an answer before the
/// connection closes. `Idle`/`Truncated`/`Io` are not answerable and must
/// be handled by the front end (returns `None`).
pub(crate) fn protocol_error_response(e: &HttpError) -> Option<(u16, &'static str, Body)> {
    match e {
        HttpError::Deadline => Some((408, "Request Timeout", BODY_DEADLINE.into())),
        HttpError::TooLarge("header") => {
            Some((413, "Payload Too Large", BODY_HEADER_TOO_LARGE.into()))
        }
        HttpError::TooLarge(_) => Some((413, "Payload Too Large", BODY_BODY_TOO_LARGE.into())),
        HttpError::Malformed(_) => Some((400, "Bad Request", error_body(&e.to_string()).into())),
        HttpError::Idle | HttpError::Truncated | HttpError::Io(_) => None,
    }
}

pub(crate) fn error_body(msg: &str) -> String {
    JsonValue::obj([("error", JsonValue::Str(msg.to_string()))]).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The precomputed static bodies must be byte-identical to what the
    /// dynamic path would have produced from the corresponding message.
    #[test]
    fn static_bodies_match_dynamic_rendering() {
        assert_eq!(BODY_OVERLOADED, error_body("overloaded"));
        assert_eq!(BODY_SHUTTING_DOWN, error_body("shutting down"));
        assert_eq!(BODY_DEADLINE, error_body(&HttpError::Deadline.to_string()));
        assert_eq!(BODY_HEADER_TOO_LARGE, error_body(&HttpError::TooLarge("header").to_string()));
        assert_eq!(BODY_BODY_TOO_LARGE, error_body(&HttpError::TooLarge("body").to_string()));
        assert_eq!(BODY_NON_FINITE, error_body("non-finite prediction"));
    }

    /// `prediction_body` must render the exact bytes the `JsonValue`
    /// tree used to produce (sorted keys, shared number formatting).
    #[test]
    fn prediction_body_matches_tree_rendering() {
        for rate in [12.5, -0.0, 3.0, 1.0e-7, 123456789.25] {
            let p = Prediction {
                rate,
                version: "v0001-quoted\"x".into(),
                batch_size: 17,
                explain: None,
            };
            let mut got = String::new();
            prediction_body(&p, &mut got);
            let want = JsonValue::obj([
                ("rate", JsonValue::Num(p.rate)),
                ("version", JsonValue::Str(p.version.to_string())),
                ("batch_size", JsonValue::Num(p.batch_size as f64)),
            ])
            .to_string();
            assert_eq!(got, want, "body mismatch at rate {rate}");
        }
    }

    /// The `/explain` body must be flat (exactly one `}`, for framing by
    /// brace counting), parse as JSON, and fold back to the served
    /// prediction bitwise.
    #[test]
    fn explain_body_is_flat_and_folds_to_prediction() {
        use crate::batcher::Explanation;
        use crate::registry::LoadedModel;
        use wdt_features::Dataset;
        use wdt_model::{FitConfig, FittedModel, ModelKind};

        let names = vec!["alpha".to_string(), "beta".to_string(), "gamma".to_string()];
        let x: Vec<Vec<f64>> =
            (0..80).map(|i| vec![(i % 7) as f64, (i % 5) as f64, (i % 3) as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] - r[1] + 0.5 * r[2]).collect();
        let model =
            FittedModel::fit(&Dataset::new(names, x, y), ModelKind::Gbdt, &FitConfig::default())
                .unwrap();
        let row = vec![3.0, 1.0, 2.0];
        let (bias, pred, contribs) = model.explain_row(&row);
        let loaded = Arc::new(LoadedModel::new("v9".into(), model));
        let p = Prediction {
            rate: pred,
            version: "v9".into(),
            batch_size: 1,
            explain: Some(Explanation { bias, contributions: contribs, model: loaded }),
        };
        let mut body = String::new();
        explain_body(&p, 2, &mut body);
        assert_eq!(body.bytes().filter(|&b| b == b'}').count(), 1, "{body}");
        let v = JsonValue::parse(&body).unwrap();
        let bias = v.field("bias").unwrap().as_f64().unwrap();
        let contribs = v.field("contributions").unwrap().as_f64_vec().unwrap();
        let fold = contribs.iter().fold(bias, |a, &c| a + c);
        let served = v.field("prediction").unwrap().as_f64().unwrap();
        assert_eq!(fold.to_bits(), served.to_bits(), "{body}");
        assert_eq!(v.field("features").unwrap().as_string_vec().unwrap().len(), contribs.len());
        let top = v.field("top").unwrap().as_arr().unwrap();
        assert_eq!(top.len(), 2);
        // Top entries are [name, contribution] pairs, largest |c| first.
        let c0 = top[0].as_arr().unwrap()[1].as_f64().unwrap();
        let c1 = top[1].as_arr().unwrap()[1].as_f64().unwrap();
        assert!(c0.abs() >= c1.abs(), "{body}");
        assert_eq!(v.field("version").unwrap().as_str().unwrap(), "v9");
    }
}
