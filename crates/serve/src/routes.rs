//! Routing and response shaping shared by both HTTP front ends.
//!
//! The blocking worker pool (`server.rs`) and the nonblocking event loop
//! (`eventloop.rs`) differ only in how bytes and replies move; *what* a
//! request means is defined once, here. [`route`] classifies a request
//! (method/path/body as byte slices — the event loop passes ranges into
//! its read buffer, the blocking front end passes its owned strings)
//! into either an immediately-renderable response or a prediction row to
//! hand to the batcher — the front end decides whether to wait for the
//! reply (blocking) or to attach a completion (event loop). The caller
//! supplies the row scratch, so the event loop can recycle row vectors
//! through its pool while the blocking path just hands over a fresh one.
//!
//! Metrics discipline: `route` bumps only the per-endpoint counters. The
//! request/shed/error counters move in `ServerMetrics::on_response`,
//! which each front end calls exactly once per response it writes.
//!
//! Response bodies are `Cow<'static, str>`: the fixed messages
//! (overload shed, shutdown, deadline, size limits, non-finite guard)
//! are precomputed `&'static str`s so an error storm — the one time
//! response volume spikes — allocates nothing, while dynamic bodies
//! (metrics, healthz, per-message 400s) stay owned strings.

use crate::batcher::{Batcher, Prediction, SubmitError};
use crate::http::{HttpError, Method};
use crate::metrics::ServerMetrics;
use crate::registry::ModelRegistry;
use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use wdt_types::json::{escape_into, format_f64};
use wdt_types::JsonValue;

/// A response body: static for the fixed messages, owned otherwise.
pub(crate) type Body = Cow<'static, str>;

/// `{"error":"overloaded"}` etc., precomputed. Each constant must equal
/// `error_body(<display text>)` — asserted in the tests below, so the
/// strings cannot drift from the `Display` impls they mirror.
pub(crate) const BODY_OVERLOADED: &str = "{\"error\":\"overloaded\"}";
pub(crate) const BODY_SHUTTING_DOWN: &str = "{\"error\":\"shutting down\"}";
pub(crate) const BODY_DEADLINE: &str = "{\"error\":\"request deadline expired\"}";
pub(crate) const BODY_HEADER_TOO_LARGE: &str = "{\"error\":\"header too large\"}";
pub(crate) const BODY_BODY_TOO_LARGE: &str = "{\"error\":\"body too large\"}";
pub(crate) const BODY_NON_FINITE: &str = "{\"error\":\"non-finite prediction\"}";

/// Shared state both front ends operate on.
pub(crate) struct Ctx {
    pub registry: Arc<ModelRegistry>,
    pub batcher: Arc<Batcher>,
    pub metrics: Arc<ServerMetrics>,
    pub stopping: Arc<AtomicBool>,
}

/// What to do with a parsed request.
pub(crate) enum Routed {
    /// Fully-formed response: status, reason, JSON body.
    Done(u16, &'static str, Body),
    /// A `/predict` row admitted past validation into the caller's `row`
    /// scratch; the caller submits it to the batcher its own way.
    Predict,
}

/// Dispatch one request. Admin endpoints are answered inline; `/predict`
/// is parsed into `row` here but submitted by the caller.
pub(crate) fn route(
    method: Method,
    method_bytes: &[u8],
    path: &[u8],
    body: &[u8],
    ctx: &Ctx,
    row: &mut Vec<f64>,
) -> Routed {
    // Method/path reached us through the head's UTF-8 check; the lossy
    // conversion never actually copies.
    let method_str = std::str::from_utf8(method_bytes).unwrap_or("?");
    let path_str = std::str::from_utf8(path).unwrap_or("?");
    ctx.metrics.on_route(method_str, path_str);
    match (method, path) {
        (Method::Post, b"/predict") => {
            match crate::rowscan::scan_feature_row(body, ctx.registry.schema(), row) {
                Ok(()) => Routed::Predict,
                Err(msg) => Routed::Done(400, "Bad Request", error_body(&msg).into()),
            }
        }
        (Method::Get, b"/healthz") => {
            let version = ctx.registry.current().version.clone();
            let body = JsonValue::obj([
                ("status", JsonValue::Str("ok".into())),
                ("version", JsonValue::Str(version)),
            ])
            .to_string();
            Routed::Done(200, "OK", body.into())
        }
        (Method::Get, b"/metrics") => {
            let mut m = ctx.metrics.to_json();
            if let JsonValue::Obj(map) = &mut m {
                map.insert("queue_depth".into(), JsonValue::Num(ctx.batcher.queue_depth() as f64));
                map.insert(
                    "version".into(),
                    JsonValue::Str(ctx.registry.current().version.clone()),
                );
            }
            Routed::Done(200, "OK", m.to_string().into())
        }
        (Method::Post, b"/reload") => match ctx.registry.reload() {
            Ok(version) => {
                let body = JsonValue::obj([("version", JsonValue::Str(version))]).to_string();
                Routed::Done(200, "OK", body.into())
            }
            Err(e) => Routed::Done(500, "Internal Server Error", error_body(&e.to_string()).into()),
        },
        (Method::Post, b"/shutdown") => {
            ctx.stopping.store(true, Ordering::SeqCst);
            Routed::Done(
                200,
                "OK",
                JsonValue::obj([("status", JsonValue::Str("stopping".into()))]).to_string().into(),
            )
        }
        _ => Routed::Done(
            404,
            "Not Found",
            error_body(&format!("no route {method_str} {path_str}")).into(),
        ),
    }
}

/// Append the wire body for a completed prediction to `out` —
/// `{"batch_size":N,"rate":R,"version":"V"}`, the exact bytes the
/// sorted-map `JsonValue` rendering produced (same key order, same
/// [`format_f64`] number spelling, same [`escape_into`] escaping), but
/// into a reusable buffer. Callers must have handled the non-finite
/// guard first.
pub(crate) fn prediction_body(p: &Prediction, out: &mut String) {
    out.push_str("{\"batch_size\":");
    format_f64(p.batch_size as f64, out);
    out.push_str(",\"rate\":");
    format_f64(p.rate, out);
    out.push_str(",\"version\":");
    escape_into(&p.version, out);
    out.push('}');
}

/// Response for a completed prediction (covers the non-finite guard).
pub(crate) fn prediction_response(p: &Prediction) -> (u16, &'static str, Body) {
    if !p.rate.is_finite() {
        return (500, "Internal Server Error", BODY_NON_FINITE.into());
    }
    let mut body = String::with_capacity(64);
    prediction_body(p, &mut body);
    (200, "OK", body.into())
}

/// Response for a refused batcher submission.
pub(crate) fn submit_error_response(e: &SubmitError) -> (u16, &'static str, Body) {
    match e {
        SubmitError::Overloaded => (503, "Service Unavailable", BODY_OVERLOADED.into()),
        SubmitError::ShuttingDown => (503, "Service Unavailable", BODY_SHUTTING_DOWN.into()),
    }
}

/// Response for a protocol error that still gets an answer before the
/// connection closes. `Idle`/`Truncated`/`Io` are not answerable and must
/// be handled by the front end (returns `None`).
pub(crate) fn protocol_error_response(e: &HttpError) -> Option<(u16, &'static str, Body)> {
    match e {
        HttpError::Deadline => Some((408, "Request Timeout", BODY_DEADLINE.into())),
        HttpError::TooLarge("header") => {
            Some((413, "Payload Too Large", BODY_HEADER_TOO_LARGE.into()))
        }
        HttpError::TooLarge(_) => Some((413, "Payload Too Large", BODY_BODY_TOO_LARGE.into())),
        HttpError::Malformed(_) => Some((400, "Bad Request", error_body(&e.to_string()).into())),
        HttpError::Idle | HttpError::Truncated | HttpError::Io(_) => None,
    }
}

pub(crate) fn error_body(msg: &str) -> String {
    JsonValue::obj([("error", JsonValue::Str(msg.to_string()))]).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The precomputed static bodies must be byte-identical to what the
    /// dynamic path would have produced from the corresponding message.
    #[test]
    fn static_bodies_match_dynamic_rendering() {
        assert_eq!(BODY_OVERLOADED, error_body("overloaded"));
        assert_eq!(BODY_SHUTTING_DOWN, error_body("shutting down"));
        assert_eq!(BODY_DEADLINE, error_body(&HttpError::Deadline.to_string()));
        assert_eq!(BODY_HEADER_TOO_LARGE, error_body(&HttpError::TooLarge("header").to_string()));
        assert_eq!(BODY_BODY_TOO_LARGE, error_body(&HttpError::TooLarge("body").to_string()));
        assert_eq!(BODY_NON_FINITE, error_body("non-finite prediction"));
    }

    /// `prediction_body` must render the exact bytes the `JsonValue`
    /// tree used to produce (sorted keys, shared number formatting).
    #[test]
    fn prediction_body_matches_tree_rendering() {
        for rate in [12.5, -0.0, 3.0, 1.0e-7, 123456789.25] {
            let p = Prediction { rate, version: "v0001-quoted\"x".into(), batch_size: 17 };
            let mut got = String::new();
            prediction_body(&p, &mut got);
            let want = JsonValue::obj([
                ("rate", JsonValue::Num(p.rate)),
                ("version", JsonValue::Str(p.version.to_string())),
                ("batch_size", JsonValue::Num(p.batch_size as f64)),
            ])
            .to_string();
            assert_eq!(got, want, "body mismatch at rate {rate}");
        }
    }
}
