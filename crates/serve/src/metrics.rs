//! Server-side counters and histograms, exported by `GET /metrics`.
//!
//! All fields are lock-free atomics (histograms come from
//! [`wdt_types::hist`]), so the hot path records with a handful of
//! relaxed increments. Latencies are in microseconds.

use std::sync::atomic::{AtomicU64, Ordering};
use wdt_types::{Histogram, JsonValue};

/// Aggregated service metrics.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// HTTP requests accepted (any endpoint, any outcome).
    pub requests: AtomicU64,
    /// Successful predictions returned.
    pub predictions: AtomicU64,
    /// Requests shed by admission control (queue full → 503).
    pub shed: AtomicU64,
    /// Client or server errors (malformed body, unknown route, …).
    pub errors: AtomicU64,
    /// End-to-end request latency, µs (parse → response written).
    pub request_latency_us: Histogram,
    /// Time a prediction spends queued + batched + predicted, µs.
    pub predict_latency_us: Histogram,
    /// Size of each executed inference batch.
    pub batch_size: Histogram,
}

impl ServerMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one accepted request.
    pub fn on_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one served prediction with its end-to-end latency.
    pub fn on_prediction(&self, latency_us: u64) {
        self.predictions.fetch_add(1, Ordering::Relaxed);
        self.request_latency_us.record(latency_us);
    }

    /// Count one shed (503) response.
    pub fn on_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one error response.
    pub fn on_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot as the `/metrics` JSON document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("requests", JsonValue::Num(self.requests.load(Ordering::Relaxed) as f64)),
            ("predictions", JsonValue::Num(self.predictions.load(Ordering::Relaxed) as f64)),
            ("shed", JsonValue::Num(self.shed.load(Ordering::Relaxed) as f64)),
            ("errors", JsonValue::Num(self.errors.load(Ordering::Relaxed) as f64)),
            ("request_latency_us", self.request_latency_us.summary_json()),
            ("predict_latency_us", self.predict_latency_us.summary_json()),
            ("batch_size", self.batch_size.summary_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_snapshot_serializes() {
        let m = ServerMetrics::new();
        m.on_request();
        m.on_prediction(250);
        m.on_request();
        m.on_shed();
        m.batch_size.record(2);
        let v = JsonValue::parse(&m.to_json().to_string()).unwrap();
        assert_eq!(v.field("requests").unwrap().as_usize().unwrap(), 2);
        assert_eq!(v.field("predictions").unwrap().as_usize().unwrap(), 1);
        assert_eq!(v.field("shed").unwrap().as_usize().unwrap(), 1);
        let lat = v.field("request_latency_us").unwrap();
        assert_eq!(lat.field("count").unwrap().as_usize().unwrap(), 1);
        assert!(lat.field("p99").unwrap().as_f64().unwrap() > 0.0);
    }
}
