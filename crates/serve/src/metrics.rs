//! Server-side metrics, backed by a per-server [`wdt_obs::Registry`].
//!
//! Each [`ServerMetrics`] owns its registry — deliberately *not*
//! [`Registry::global`], because the test suite runs several servers in
//! one process and their counts must not bleed into each other. Hot-path
//! handles (counters, histograms) are cached as public fields at
//! construction, so recording is still a handful of relaxed atomic
//! operations with no name lookup. Latencies are in microseconds.
//!
//! `GET /metrics` keeps its original top-level field names (`requests`,
//! `predictions`, `shed`, `errors`, `request_latency_us`,
//! `predict_latency_us`, `batch_size`) and adds `endpoints` (per-route
//! request counts), `uptime_s`, and `build` (crate name + version). The
//! same registry also renders Prometheus text via
//! [`ServerMetrics::to_prometheus`].

use std::time::Instant;
use wdt_obs::{Counter, Gauge, Registry};
use wdt_types::{Histogram, JsonValue};

/// Aggregated service metrics; handles into an owned registry.
#[derive(Debug)]
pub struct ServerMetrics {
    /// HTTP requests accepted (any endpoint, any outcome).
    pub requests: Counter,
    /// Successful predictions returned.
    pub predictions: Counter,
    /// Requests shed by admission control (queue full → 503).
    pub shed: Counter,
    /// Client or server errors (malformed body, unknown route, …).
    pub errors: Counter,
    /// End-to-end request latency, µs (parse → response written).
    pub request_latency_us: std::sync::Arc<Histogram>,
    /// Time a prediction spends queued + batched + predicted, µs.
    pub predict_latency_us: std::sync::Arc<Histogram>,
    /// Size of each executed inference batch.
    pub batch_size: std::sync::Arc<Histogram>,
    /// Inference queue depth, updated by the batcher on enqueue/drain.
    pub queue_depth: Gauge,
    ep_predict: Counter,
    ep_explain: Counter,
    ep_healthz: Counter,
    ep_metrics: Counter,
    ep_alerts: Counter,
    ep_reload: Counter,
    ep_shutdown: Counter,
    ep_other: Counter,
    registry: Registry,
    started: Instant,
}

impl ServerMetrics {
    /// Fresh, all-zero metrics over a private registry.
    pub fn new() -> Self {
        let registry = Registry::new();
        ServerMetrics {
            requests: registry.counter("serve.requests"),
            predictions: registry.counter("serve.predictions"),
            shed: registry.counter("serve.shed"),
            errors: registry.counter("serve.errors"),
            request_latency_us: registry.histogram("serve.request_latency_us"),
            predict_latency_us: registry.histogram("serve.predict_latency_us"),
            batch_size: registry.histogram("serve.batch_size"),
            queue_depth: registry.gauge("serve.queue_depth"),
            ep_predict: registry.counter("serve.endpoint.predict"),
            ep_explain: registry.counter("serve.endpoint.explain"),
            ep_healthz: registry.counter("serve.endpoint.healthz"),
            ep_metrics: registry.counter("serve.endpoint.metrics"),
            ep_alerts: registry.counter("serve.endpoint.alerts"),
            ep_reload: registry.counter("serve.endpoint.reload"),
            ep_shutdown: registry.counter("serve.endpoint.shutdown"),
            ep_other: registry.counter("serve.endpoint.other"),
            registry,
            started: Instant::now(),
        }
    }

    /// The registry behind the handles (Prometheus exposition, tests).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Count one *answered* response. This is the only place the request
    /// and error counters move, and front ends call it exactly once per
    /// response they write — protocol-level 400/408/413s included — so
    /// `requests >= shed + errors` holds by construction. Connections
    /// that die without a response (peer hangup, socket error) are
    /// counted nowhere.
    pub fn on_response(&self, status: u16) {
        self.requests.inc();
        if status == 503 {
            self.shed.inc();
            // Alert on the *onset* of a shed burn and every 1000 sheds
            // thereafter — never per-503, so an overload storm does not
            // pay a message allocation per shed response. Consecutive
            // repeats dedup-merge in the sink anyway.
            let n = self.shed.get();
            if n == 1 || n.is_multiple_of(1000) {
                wdt_obs::AlertSink::global().raise(
                    wdt_obs::AlertKind::ShedBurn,
                    wdt_obs::Severity::Warning,
                    format!("admission control shedding ({n} total)"),
                    n as f64,
                    None,
                );
            }
        } else if status >= 400 {
            self.errors.inc();
        }
    }

    /// Count one request against its route's endpoint counter.
    pub fn on_route(&self, method: &str, path: &str) {
        match (method, path) {
            ("POST", "/predict") => self.ep_predict.inc(),
            ("POST", "/explain") => self.ep_explain.inc(),
            ("GET", "/healthz") => self.ep_healthz.inc(),
            ("GET", "/metrics") | ("GET", "/metrics.prom") => self.ep_metrics.inc(),
            ("GET", "/alerts") => self.ep_alerts.inc(),
            ("POST", "/reload") => self.ep_reload.inc(),
            ("POST", "/shutdown") => self.ep_shutdown.inc(),
            _ => self.ep_other.inc(),
        }
    }

    /// Count one served prediction with its end-to-end latency.
    pub fn on_prediction(&self, latency_us: u64) {
        self.predictions.inc();
        self.request_latency_us.record(latency_us);
    }

    /// Snapshot as the `/metrics` JSON document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("requests", JsonValue::Num(self.requests.get() as f64)),
            ("predictions", JsonValue::Num(self.predictions.get() as f64)),
            ("shed", JsonValue::Num(self.shed.get() as f64)),
            ("errors", JsonValue::Num(self.errors.get() as f64)),
            ("request_latency_us", self.request_latency_us.summary_json()),
            ("predict_latency_us", self.predict_latency_us.summary_json()),
            ("batch_size", self.batch_size.summary_json()),
            (
                "endpoints",
                JsonValue::obj([
                    ("predict", JsonValue::Num(self.ep_predict.get() as f64)),
                    ("explain", JsonValue::Num(self.ep_explain.get() as f64)),
                    ("healthz", JsonValue::Num(self.ep_healthz.get() as f64)),
                    ("metrics", JsonValue::Num(self.ep_metrics.get() as f64)),
                    ("alerts", JsonValue::Num(self.ep_alerts.get() as f64)),
                    ("reload", JsonValue::Num(self.ep_reload.get() as f64)),
                    ("shutdown", JsonValue::Num(self.ep_shutdown.get() as f64)),
                    ("other", JsonValue::Num(self.ep_other.get() as f64)),
                ]),
            ),
            ("uptime_s", JsonValue::Num(self.started.elapsed().as_secs_f64())),
            (
                "build",
                JsonValue::obj([
                    ("name", JsonValue::Str(env!("CARGO_PKG_NAME").to_string())),
                    ("version", JsonValue::Str(env!("CARGO_PKG_VERSION").to_string())),
                ]),
            ),
        ])
    }

    /// Prometheus text exposition of every serve metric.
    pub fn to_prometheus(&self) -> String {
        self.registry.to_prometheus()
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_snapshot_serializes() {
        let m = ServerMetrics::new();
        m.on_response(200);
        m.on_route("POST", "/predict");
        m.on_prediction(250);
        m.on_response(503);
        m.on_route("GET", "/nope");
        m.batch_size.record(2);
        let v = JsonValue::parse(&m.to_json().to_string()).unwrap();
        assert_eq!(v.field("requests").unwrap().as_usize().unwrap(), 2);
        assert_eq!(v.field("predictions").unwrap().as_usize().unwrap(), 1);
        assert_eq!(v.field("shed").unwrap().as_usize().unwrap(), 1);
        let lat = v.field("request_latency_us").unwrap();
        assert_eq!(lat.field("count").unwrap().as_usize().unwrap(), 1);
        assert!(lat.field("p99").unwrap().as_f64().unwrap() > 0.0);
        let eps = v.field("endpoints").unwrap();
        assert_eq!(eps.field("predict").unwrap().as_usize().unwrap(), 1);
        assert_eq!(eps.field("other").unwrap().as_usize().unwrap(), 1);
        assert_eq!(eps.field("healthz").unwrap().as_usize().unwrap(), 0);
        assert!(v.field("uptime_s").unwrap().as_f64().unwrap() >= 0.0);
        let build = v.field("build").unwrap();
        assert_eq!(build.field("version").unwrap().as_str().unwrap(), env!("CARGO_PKG_VERSION"));
    }

    #[test]
    fn every_answered_status_counts_exactly_one_request() {
        let m = ServerMetrics::new();
        for status in [200, 200, 400, 404, 408, 413, 500, 503] {
            m.on_response(status);
        }
        assert_eq!(m.requests.get(), 8);
        assert_eq!(m.shed.get(), 1, "503 is shed, not error");
        assert_eq!(m.errors.get(), 5, "4xx/5xx except 503");
        assert!(m.shed.get() + m.errors.get() <= m.requests.get());
    }

    #[test]
    fn separate_servers_do_not_share_counters() {
        let a = ServerMetrics::new();
        let b = ServerMetrics::new();
        a.on_response(200);
        a.on_response(200);
        assert_eq!(a.requests.get(), 2);
        assert_eq!(b.requests.get(), 0);
    }

    #[test]
    fn prometheus_exposition_covers_serve_metrics() {
        let m = ServerMetrics::new();
        m.on_response(200);
        m.queue_depth.set(3.0);
        m.batch_size.record(4);
        let text = m.to_prometheus();
        assert!(text.contains("# TYPE serve_requests counter\nserve_requests 1\n"), "{text}");
        assert!(text.contains("serve_queue_depth 3\n"), "{text}");
        assert!(text.contains("serve_batch_size_count 1"), "{text}");
    }
}
