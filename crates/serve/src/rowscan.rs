//! Schema-aware, allocation-free `/predict` body scanner.
//!
//! The generic path — `JsonValue::parse` into a `BTreeMap` tree, then a
//! per-key walk against `ServeSchema::position()` — costs one tree of
//! heap allocations plus a `String` per key for every request, ~2.4 µs
//! of the event loop's per-request budget. But a feature body is almost
//! always the one shape `{"name": number, …}` with plain ASCII names,
//! so [`scan_feature_row`] handles exactly that shape in a single pass
//! over the bytes: feature names are resolved against a precomputed
//! first-byte index ([`SchemaIndex`]) without materializing them, and
//! values are parsed straight into the caller's reusable row scratch.
//!
//! **Parity is the contract, enforced two ways.** First by
//! construction: the scanner shares `wdt_types::json`'s whitespace set
//! and number-token grammar (via [`wdt_types::json::scan_number`], so
//! values are bit-identical), and *any* input outside the fast shape —
//! non-object roots, escaped or non-ASCII keys, non-number values,
//! malformed tokens, trailing input — falls back to the original
//! `JsonValue::parse` path, which produces byte-exact error messages.
//! Semantic errors (unknown feature / non-finite value) are deferred to
//! the end of the scan and attributed to the lexicographically smallest
//! offending key, replicating the sorted-map iteration order of the
//! slow path (duplicate keys: the last value wins, and only final
//! values are judged — exactly what a `BTreeMap` insert sequence
//! yields). Second by proptest: the parity suite below feeds both paths
//! arbitrary well-formed and mutilated bodies and requires identical
//! rows (bitwise) and identical error strings.

use crate::registry::ServeSchema;
use wdt_types::JsonValue;

/// First-byte index over a schema's feature names: the names, sorted as
/// byte strings, bucketed by their first byte. A lookup inspects only
/// the (few) names sharing the key's first byte — no hashing, no
/// allocation, and trivially correct to precompute at schema build time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SchemaIndex {
    /// Feature names as byte strings, sorted.
    names: Vec<Vec<u8>>,
    /// `names[k]` is feature number `pos[k]` in the serving row.
    pos: Vec<u32>,
    /// `first[b]..first[b+1]` is the run of `names` starting with byte
    /// `b` (258 entries: 256 buckets + sentinel; index 256 unused for
    /// lookups since keys reaching the index are ASCII).
    first: Vec<u32>,
}

impl SchemaIndex {
    pub(crate) fn build(names: &[String]) -> Self {
        let mut entries: Vec<(Vec<u8>, u32)> =
            names.iter().enumerate().map(|(i, n)| (n.clone().into_bytes(), i as u32)).collect();
        entries.sort();
        let mut first = vec![0u32; 258];
        for (k, (name, _)) in entries.iter().enumerate() {
            let b = name.first().map_or(0, |&b| b as usize);
            // All entries with first byte > b start at or after k + 1.
            for slot in &mut first[b + 1..] {
                *slot = (k + 1) as u32;
            }
        }
        let (names, pos) = entries.into_iter().unzip();
        SchemaIndex { names, pos, first }
    }

    /// Row position of the feature named exactly `key`, if any.
    #[inline]
    fn lookup(&self, key: &[u8]) -> Option<usize> {
        let b = *key.first()? as usize;
        let (lo, hi) = (self.first[b] as usize, self.first[b + 1] as usize);
        for k in lo..hi {
            if self.names[k] == key {
                return Some(self.pos[k] as usize);
            }
        }
        None
    }
}

/// Parse a `/predict` body into `row` (cleared and resized to the
/// schema width; missing features stay 0.0). Returns the same
/// `Result` — including the exact error strings — as the original
/// `JsonValue`-tree path, but without allocating on well-formed input.
pub(crate) fn scan_feature_row(
    body: &[u8],
    schema: &ServeSchema,
    row: &mut Vec<f64>,
) -> Result<(), String> {
    row.clear();
    row.resize(schema.width(), 0.0);
    let mut unknown: Option<(usize, usize)> = None;
    if !fast_scan(body, schema.scan_index(), row, &mut unknown) {
        // The body is outside the fast shape. Re-zero whatever the
        // partial scan wrote and let the tree path decide — its answer
        // (value or error message) is the specification.
        for v in row.iter_mut() {
            *v = 0.0;
        }
        return slow_scan_feature_row(body, schema, row);
    }
    // Grammar accepted; judge semantics the way sorted-map iteration
    // would: the lexicographically smallest offending key wins, unknown
    // names and non-finite final values competing in one order.
    let known_bad = schema
        .position()
        .iter()
        .find(|&(_, &i)| !row[i].is_finite())
        .map(|(name, _)| name.as_bytes());
    let unknown_bad = unknown.map(|(k0, k1)| &body[k0..k1]);
    match (unknown_bad, known_bad) {
        (None, None) => Ok(()),
        (Some(u), k) if k.is_none() || u < k.unwrap() => {
            // Fast-path keys are ASCII by construction, hence valid UTF-8.
            Err(format!("unknown feature '{}'", std::str::from_utf8(u).unwrap_or("?")))
        }
        (_, Some(k)) => {
            Err(format!("feature '{}' is not finite", std::str::from_utf8(k).unwrap_or("?")))
        }
        // Unreachable: covered by the arms above, but the compiler
        // cannot see that `(Some(u), None)` matches arm two.
        (Some(_), None) => unreachable!(),
    }
}

/// The original tree-building path, kept verbatim as the fallback for
/// anything outside the fast shape *and* as the oracle the proptest
/// parity suite checks the scanner against.
pub(crate) fn slow_scan_feature_row(
    body: &[u8],
    schema: &ServeSchema,
    row: &mut Vec<f64>,
) -> Result<(), String> {
    row.clear();
    row.resize(schema.width(), 0.0);
    let text = std::str::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    let parsed = JsonValue::parse(text).map_err(|e| e.to_string())?;
    let JsonValue::Obj(map) = parsed else {
        return Err("body must be a JSON object of feature values".into());
    };
    for (name, value) in &map {
        let Some(&i) = schema.position().get(name) else {
            return Err(format!("unknown feature '{name}'"));
        };
        let v = value.as_f64().map_err(|_| format!("feature '{name}' must be a number"))?;
        if !v.is_finite() {
            return Err(format!("feature '{name}' is not finite"));
        }
        row[i] = v;
    }
    Ok(())
}

#[inline]
fn skip_ws(b: &[u8], p: &mut usize) {
    // Identical whitespace set to wdt_types::json.
    while *p < b.len() && matches!(b[*p], b' ' | b'\t' | b'\n' | b'\r') {
        *p += 1;
    }
}

/// One pass over `{"plain-ascii-key": number, …}`. Returns `false` the
/// moment the input departs from that shape (the caller falls back);
/// `true` means the whole body was consumed and `row`/`unknown` hold
/// the final values and the smallest unknown key's byte range.
fn fast_scan(
    b: &[u8],
    idx: &SchemaIndex,
    row: &mut [f64],
    unknown: &mut Option<(usize, usize)>,
) -> bool {
    let mut p = 0usize;
    skip_ws(b, &mut p);
    if b.get(p) != Some(&b'{') {
        return false;
    }
    p += 1;
    skip_ws(b, &mut p);
    if b.get(p) == Some(&b'}') {
        p += 1;
    } else {
        loop {
            skip_ws(b, &mut p);
            if b.get(p) != Some(&b'"') {
                return false;
            }
            p += 1;
            let k0 = p;
            loop {
                match b.get(p) {
                    // Escapes and non-ASCII need real unescaping/UTF-8
                    // handling — the tree path's job.
                    None | Some(b'\\') => return false,
                    Some(&c) if c >= 0x80 => return false,
                    Some(b'"') => break,
                    Some(_) => p += 1,
                }
            }
            let k1 = p;
            p += 1;
            skip_ws(b, &mut p);
            if b.get(p) != Some(&b':') {
                return false;
            }
            p += 1;
            skip_ws(b, &mut p);
            // Values must be number tokens; anything else (strings,
            // nested containers, literals, junk) is not the fast shape.
            match b.get(p) {
                Some(&c) if c == b'-' || c.is_ascii_digit() => {}
                _ => return false,
            }
            let Ok(v) = wdt_types::json::scan_number(b, &mut p) else {
                return false;
            };
            match idx.lookup(&b[k0..k1]) {
                Some(i) => row[i] = v,
                None => {
                    if unknown.is_none_or(|(u0, u1)| b[k0..k1] < b[u0..u1]) {
                        *unknown = Some((k0, k1));
                    }
                }
            }
            skip_ws(b, &mut p);
            match b.get(p) {
                Some(b',') => p += 1,
                Some(b'}') => {
                    p += 1;
                    break;
                }
                _ => return false,
            }
        }
    }
    skip_ws(b, &mut p);
    // Trailing input is an error; let the tree path phrase it.
    p == b.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> ServeSchema {
        ServeSchema::prediction()
    }

    fn fast(body: &[u8]) -> Result<Vec<f64>, String> {
        let s = schema();
        let mut row = Vec::new();
        scan_feature_row(body, &s, &mut row).map(|()| row)
    }

    fn slow(body: &[u8]) -> Result<Vec<f64>, String> {
        let s = schema();
        let mut row = Vec::new();
        slow_scan_feature_row(body, &s, &mut row).map(|()| row)
    }

    /// Both paths agree bitwise (rows) and byte-for-byte (errors).
    fn assert_parity(body: &[u8]) {
        let (a, b) = (fast(body), slow(body));
        match (&a, &b) {
            (Ok(ra), Ok(rb)) => {
                let bits = |r: &[f64]| r.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                assert_eq!(
                    bits(ra),
                    bits(rb),
                    "row mismatch for {:?}",
                    String::from_utf8_lossy(body)
                );
            }
            _ => assert_eq!(a, b, "outcome mismatch for {:?}", String::from_utf8_lossy(body)),
        }
    }

    #[test]
    fn parses_the_plain_shape_without_fallback() {
        let s = schema();
        let mut row = Vec::new();
        let mut unknown = None;
        assert!(fast_scan(
            br#"{"Ksout": 12.5, "C": 3, "P": -2e-3}"#,
            s.scan_index(),
            {
                row.resize(s.width(), 0.0);
                &mut row
            },
            &mut unknown
        ));
        assert_eq!(row[s.position()["Ksout"]], 12.5);
        assert_eq!(row[s.position()["C"]], 3.0);
        assert_eq!(row[s.position()["P"]], -2e-3);
        assert_eq!(unknown, None);
    }

    #[test]
    fn matches_slow_path_on_representative_bodies() {
        for body in [
            br#"{"Ksout": 1.5, "C": 2}"#.as_slice(),
            br#"{}"#.as_slice(),
            br#"  { "C" : 1e3 }  "#.as_slice(),
            br#"{"C":0,"C":7}"#.as_slice(), // duplicate known: last wins
            br#"{"nope": 1}"#.as_slice(),   // unknown feature
            br#"{"zz": 1, "aa": 2}"#.as_slice(), // smallest unknown wins
            br#"{"zz": 1, "C": 1e999}"#.as_slice(), // non-finite beats larger unknown
            br#"{"A": 1, "C": 1e999}"#.as_slice(), // unknown beats larger non-finite
            br#"{"C": 1e999, "C": 1}"#.as_slice(), // only final value judged
            br#"{"C": "x"}"#.as_slice(),    // non-number → must-be-a-number
            br#"{"C": null}"#.as_slice(),   // literal → must-be-a-number
            br#"{"C": [1]}"#.as_slice(),    // array value
            br#"{"C": {"x": 1}}"#.as_slice(), // nested object
            br#"{"K\u0073out": 1}"#.as_slice(), // escaped key unescapes to Ksout
            br#"{"C": 1,}"#.as_slice(),     // trailing comma
            br#"{"C" 1}"#.as_slice(),       // missing colon
            br#"{"C": 01}"#.as_slice(),     // leading zero (accepted by parser)
            br#"{"C": +1}"#.as_slice(),     // leading plus (rejected)
            br#"{"C": -}"#.as_slice(),      // bare minus
            br#"{"C": 1e5e5}"#.as_slice(),  // malformed exponent
            br#"{"C": 1}trailing"#.as_slice(), // trailing input
            br#"[1, 2]"#.as_slice(),        // non-object root
            br#"42"#.as_slice(),
            b"".as_slice(),
            b"{".as_slice(),
            b"\xff\xfe".as_slice(),      // not UTF-8
            b"{\"\x01\": 1}".as_slice(), // raw control byte in key
            br#"{"": 1}"#.as_slice(),    // empty key
        ] {
            assert_parity(body);
        }
    }

    #[test]
    fn index_lookup_covers_every_schema_name_and_rejects_neighbors() {
        let s = schema();
        let idx = s.scan_index();
        for (name, &i) in s.position() {
            assert_eq!(idx.lookup(name.as_bytes()), Some(i), "lookup {name}");
            // Prefixes, extensions, and case variants must miss.
            assert_eq!(idx.lookup(&name.as_bytes()[..name.len() - 1]), None);
            let extended = format!("{name}x");
            assert_eq!(idx.lookup(extended.as_bytes()), None);
            let lower = name.to_lowercase();
            if &lower != name {
                assert_eq!(idx.lookup(lower.as_bytes()), None);
            }
        }
        assert_eq!(idx.lookup(b""), None);
        assert_eq!(idx.lookup(b"\xffweird"), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Uniform choice from a fixed word list.
    fn pick(items: &[&str]) -> BoxedStrategy<String> {
        let items: Vec<String> = items.iter().map(|s| s.to_string()).collect();
        (0..items.len()).prop_map(move |i| items[i].clone()).boxed()
    }

    /// Keys that exercise every interesting class: schema names (listed
    /// several times — the vendored `prop_oneof!` is unweighted — so
    /// known-key rows dominate), near misses, empties, escapes, and
    /// non-ASCII.
    fn arb_key() -> BoxedStrategy<String> {
        let schema = || {
            let names = ServeSchema::prediction().names().to_vec();
            (0..names.len()).prop_map(move |i| names[i].clone()).boxed()
        };
        let word = proptest::collection::vec(0u8..52u8, 1..7).prop_map(|bs| {
            bs.iter()
                .map(|&b| (if b < 26 { b'A' + b } else { b'a' + b - 26 }) as char)
                .collect::<String>()
        });
        prop_oneof![
            schema(),
            schema(),
            schema(),
            schema(),
            word,
            Just(String::new()),
            Just("K\\u0073out".to_string()),
            Just("Ks\\nout".to_string()),
            Just("Ksøut".to_string()),
        ]
        .boxed()
    }

    /// Value spellings: plain numbers, extreme numbers, and non-numbers.
    fn arb_value() -> BoxedStrategy<String> {
        let edge = &["0", "-0", "-0.0", "1e999", "-1e999", "01", "3.25", "1e-3", "2E+4"];
        let non_number = &["null", "true", "\"str\"", "[1]", "{}", "+1", "-", "1e", "nan"];
        prop_oneof![
            (-1.0e9..1.0e9).prop_map(|v| format!("{v}")),
            (-1.0..1.0).prop_map(|v| format!("{v}")),
            pick(edge),
            pick(edge),
            pick(non_number),
        ]
        .boxed()
    }

    fn arb_ws() -> BoxedStrategy<String> {
        proptest::collection::vec(pick(&[" ", "\t", "\r", "\n"]), 0..3)
            .prop_map(|v| v.concat())
            .boxed()
    }

    /// One syntactically plain object assembled from the part strategies.
    fn arb_object() -> BoxedStrategy<String> {
        let pair = (arb_key(), arb_value(), arb_ws(), arb_ws());
        (proptest::collection::vec(pair, 0..6), arb_ws(), arb_ws())
            .prop_map(|(pairs, lead, tail)| {
                let inner = pairs
                    .iter()
                    .map(|(k, v, w1, w2)| format!("{w1}\"{k}\"{w2}: {v}"))
                    .collect::<Vec<_>>()
                    .join(",");
                format!("{lead}{{{inner}}}{tail}")
            })
            .boxed()
    }

    /// Mostly well-formed objects, with the occasional structural
    /// mutation (truncation, trailing garbage, non-object).
    fn arb_body() -> BoxedStrategy<String> {
        prop_oneof![
            arb_object(),
            arb_object(),
            arb_object(),
            arb_object(),
            arb_object(),
            arb_object(),
            arb_object().prop_map(|mut s| {
                s.truncate(s.len().saturating_sub(1));
                s
            }),
            arb_object().prop_map(|s| format!("{s}!")),
            Just("[1,2]".to_string()),
        ]
        .boxed()
    }

    proptest! {
        /// THE tentpole invariant: for arbitrary bodies, the scanner and
        /// the tree path accept the same inputs, produce bitwise-equal
        /// rows, and phrase every rejection identically.
        #[test]
        fn scanner_matches_tree_path_exactly(body in arb_body()) {
            let schema = ServeSchema::prediction();
            let mut fast_row = Vec::new();
            let mut slow_row = Vec::new();
            let fast = scan_feature_row(body.as_bytes(), &schema, &mut fast_row);
            let slow = slow_scan_feature_row(body.as_bytes(), &schema, &mut slow_row);
            prop_assert_eq!(&fast, &slow, "outcome mismatch for {:?}", body);
            if fast.is_ok() {
                let fb: Vec<u64> = fast_row.iter().map(|v| v.to_bits()).collect();
                let sb: Vec<u64> = slow_row.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(fb, sb, "row bits mismatch for {:?}", body);
            }
        }

        /// Raw byte fuzz: no panics, and outcomes still agree even on
        /// garbage (exercises the UTF-8 and fallback corners).
        #[test]
        fn scanner_matches_tree_path_on_raw_bytes(body in proptest::collection::vec(0u8..=255u8, 0..64)) {
            let schema = ServeSchema::prediction();
            let mut fast_row = Vec::new();
            let mut slow_row = Vec::new();
            let fast = scan_feature_row(&body, &schema, &mut fast_row);
            let slow = slow_scan_feature_row(&body, &schema, &mut slow_row);
            prop_assert_eq!(fast, slow);
        }
    }
}
