//! Micro-batching inference engine with admission control.
//!
//! Concurrent HTTP workers each hold one prediction; tree traversal is
//! cheapest when rows are pushed through the model together. The batcher
//! bridges the two: [`Batcher::submit`] enqueues a row into a bounded
//! queue and returns a receiver; dedicated batch workers drain up to
//! [`BatchConfig::max_batch`] rows at a time — waiting at most
//! [`BatchConfig::flush`] after the first row arrives so singles are not
//! delayed indefinitely — run one `FittedModel::predict` over the whole
//! batch, and fan results back out.
//!
//! **Admission control:** when the queue already holds
//! [`BatchConfig::queue_cap`] rows, `submit` fails *immediately* with
//! [`SubmitError::Overloaded`]. The front end turns that into an explicit
//! 503 so an overloaded service sheds work in bounded time instead of
//! stacking latency until clients time out.
//!
//! **Determinism:** each row is predicted by `FittedModel::predict` on
//! the model version current when its batch starts; batching composes
//! rows, never their arithmetic, so results are bitwise identical to
//! offline single-row prediction.

use crate::metrics::ServerMetrics;
use crate::registry::{LoadedModel, ModelRegistry};
use std::collections::VecDeque;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Batching knobs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Largest batch one worker executes at once.
    pub max_batch: usize,
    /// How long a partially-filled batch may wait for company.
    pub flush: Duration,
    /// Queue capacity; submissions beyond this are shed.
    pub queue_cap: usize,
    /// Batch-executing threads.
    pub workers: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 64,
            flush: Duration::from_micros(100),
            queue_cap: 1024,
            workers: 2,
        }
    }
}

/// One completed prediction.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Predicted transfer rate (bytes/s), bitwise equal to offline
    /// `FittedModel::predict` on the same row.
    pub rate: f64,
    /// Version of the model that produced it.
    pub version: Arc<str>,
    /// Size of the batch this row rode in (observability).
    pub batch_size: usize,
    /// Per-feature attribution, present only for `/explain` submissions.
    pub explain: Option<Explanation>,
}

/// Saabas-style path attribution for one served prediction:
/// `rate == bias + Σ contributions` **bitwise** (the reconciliation in
/// `wdt_ml::exact_reconcile` guarantees the fold lands on the served
/// rate exactly).
#[derive(Clone)]
pub struct Explanation {
    /// Attribution intercept (base score plus per-tree root values).
    pub bias: f64,
    /// Signed contribution per kept feature, in the model's kept-column
    /// order (`FittedModel::feature_names` gives the matching names).
    pub contributions: Vec<f64>,
    /// The exact model version that produced the attribution — carried
    /// so rendering reads feature names from the same artifact even if
    /// a hot-swap lands between inference and emit.
    pub model: Arc<LoadedModel>,
}

impl std::fmt::Debug for Explanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Explanation")
            .field("bias", &self.bias)
            .field("contributions", &self.contributions)
            .field("version", &self.model.version)
            .finish()
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Queue at capacity — caller should report 503 and back off.
    Overloaded,
    /// The batcher is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded => write!(f, "inference queue full"),
            SubmitError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Where a finished prediction goes. Blocking workers park on a channel;
/// the event loop attaches a plain-data completion address
/// ([`crate::eventloop::ShardSink`] — no boxed closure, no allocation)
/// that enqueues the prediction for the poller, so no event-loop thread
/// ever blocks on inference. Delivery hands the row vector back too, so
/// the event loop can recycle it through its row pool.
pub enum ReplySink {
    Channel(SyncSender<Prediction>),
    Shard(crate::eventloop::ShardSink),
}

impl ReplySink {
    fn deliver(self, p: Prediction, row: Vec<f64>) {
        match self {
            // A dropped receiver (client hung up) is not an error. The
            // blocking path has no row pool; the vector just drops.
            ReplySink::Channel(tx) => {
                let _ = tx.send(p);
            }
            ReplySink::Shard(sink) => sink.deliver(p, row),
        }
    }
}

struct Job {
    row: Vec<f64>,
    enqueued: Instant,
    reply: ReplySink,
    /// `Some(buffer)` marks an `/explain` submission: the batch worker
    /// fills the buffer with per-feature contributions. The vector is
    /// caller-supplied so the event loop can recycle it through a pool.
    explain: Option<Vec<f64>>,
}

struct Shared {
    queue: Mutex<QueueState>,
    arrived: Condvar,
    registry: Arc<ModelRegistry>,
    metrics: Arc<ServerMetrics>,
    cfg: BatchConfig,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
    /// Serve everything currently queued without further patience: set
    /// by [`Batcher::kick`] when a submitter knows its burst is complete,
    /// cleared once a worker has drained the queue.
    flush_now: bool,
}

/// The micro-batching engine; see the module docs.
pub struct Batcher {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Batcher {
    /// Start `cfg.workers` batch threads over `registry`.
    pub fn start(
        registry: Arc<ModelRegistry>,
        metrics: Arc<ServerMetrics>,
        cfg: BatchConfig,
    ) -> Arc<Batcher> {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
                flush_now: false,
            }),
            arrived: Condvar::new(),
            registry,
            metrics,
            cfg: cfg.clone(),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("wdt-batch-{i}"))
                    .spawn(move || batch_loop(&shared))
                    .expect("spawn batch worker")
            })
            .collect();
        Arc::new(Batcher { shared, workers: Mutex::new(workers) })
    }

    /// Enqueue one row (serving-schema layout). Non-blocking: either the
    /// row is admitted and the returned receiver will yield exactly one
    /// [`Prediction`], or the queue is full / shutting down.
    pub fn submit(&self, row: Vec<f64>) -> Result<Receiver<Prediction>, SubmitError> {
        let (reply, rx) = sync_channel(1);
        self.submit_with(row, None, ReplySink::Channel(reply))?;
        Ok(rx)
    }

    /// Enqueue one row whose reply carries an [`Explanation`].
    pub fn submit_explain(&self, row: Vec<f64>) -> Result<Receiver<Prediction>, SubmitError> {
        let (reply, rx) = sync_channel(1);
        self.submit_with(row, Some(Vec::new()), ReplySink::Channel(reply))?;
        Ok(rx)
    }

    /// Enqueue one row with an explicit reply sink. Every admitted sink
    /// is delivered exactly once, even across shutdown (the drain in
    /// [`Batcher::shutdown`] finishes the queue before workers exit).
    /// `explain: Some(buffer)` requests per-feature attributions.
    pub fn submit_with(
        &self,
        row: Vec<f64>,
        explain: Option<Vec<f64>>,
        reply: ReplySink,
    ) -> Result<(), SubmitError> {
        let notify = {
            let mut q = self.shared.queue.lock().expect("batch queue poisoned");
            if q.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if q.jobs.len() >= self.shared.cfg.queue_cap {
                return Err(SubmitError::Overloaded);
            }
            q.jobs.push_back(Job { row, enqueued: Instant::now(), reply, explain });
            self.shared.metrics.queue_depth.set(q.jobs.len() as f64);
            // Wake a worker when the queue goes non-empty, and wake
            // another when a full batch exists. Intermediate pushes stay
            // silent: a worker in its patience window would only be
            // woken to immediately wait again, and on a busy machine
            // those wakeups are pure context-switch overhead.
            q.jobs.len() == 1 || q.jobs.len() == self.shared.cfg.max_batch
        };
        if notify {
            self.shared.arrived.notify_one();
        }
        Ok(())
    }

    /// Flush hint: serve everything queued right now without waiting out
    /// the patience window. Called by a submitter that knows its burst is
    /// complete — the event-loop poller issues one `kick` at the end of
    /// each readiness pass, because no more rows can arrive until some
    /// response it has not yet written unblocks a client. No-op on an
    /// empty queue.
    pub fn kick(&self) {
        {
            let mut q = self.shared.queue.lock().expect("batch queue poisoned");
            if q.jobs.is_empty() {
                return;
            }
            q.flush_now = true;
        }
        self.shared.arrived.notify_all();
    }

    /// Current queue depth (observability).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("batch queue poisoned").jobs.len()
    }

    /// Stop accepting work, drain everything already queued, and join the
    /// workers. Every admitted submission still gets its reply.
    pub fn shutdown(&self) {
        {
            let mut q = self.shared.queue.lock().expect("batch queue poisoned");
            q.shutdown = true;
        }
        self.shared.arrived.notify_all();
        let mut workers = self.workers.lock().expect("worker list poisoned");
        for w in workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Worker body: collect a batch (first job immediately, then up to
/// `flush` of patience for more), predict, fan out, repeat.
///
/// All per-batch storage — the drained job list, the row/reply splits,
/// the rate output, and the model's prepared-row scratch — lives in
/// worker-local vectors that are cleared, never dropped, so a warmed-up
/// worker executes whole batches without touching the allocator
/// (`predict_into` reuses the scratch the same way).
fn batch_loop(shared: &Shared) {
    let cfg = &shared.cfg;
    let mut batch: Vec<Job> = Vec::new();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut replies: Vec<(Instant, ReplySink, Option<Vec<f64>>)> = Vec::new();
    let mut rates: Vec<f64> = Vec::new();
    let mut scratch = wdt_model::PredictScratch::default();
    let mut explain_scratch = wdt_model::PredictScratch::default();
    loop {
        batch.clear();
        {
            let mut q = shared.queue.lock().expect("batch queue poisoned");
            // Wait for work (or shutdown with an empty queue → exit).
            loop {
                if !q.jobs.is_empty() {
                    break;
                }
                if q.shutdown {
                    return;
                }
                q = shared.arrived.wait(q).expect("batch queue poisoned");
            }
            // Patience phase: a partial batch lingers until the flush
            // deadline in case more rows arrive. Skipped when the batch
            // is already full, a `kick` marked the burst complete, or
            // the service is draining.
            let deadline = Instant::now() + cfg.flush;
            while q.jobs.len() < cfg.max_batch && !q.shutdown && !q.flush_now {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timeout) =
                    shared.arrived.wait_timeout(q, deadline - now).expect("batch queue poisoned");
                q = guard;
                if timeout.timed_out() {
                    break;
                }
                // Another worker may have taken everything while we
                // waited; go back to the outer wait.
                if q.jobs.is_empty() {
                    break;
                }
            }
            let take = q.jobs.len().min(cfg.max_batch);
            if take == q.jobs.len() {
                // The kick's burst is fully claimed; later arrivals get
                // a fresh patience window.
                q.flush_now = false;
            }
            batch.extend(q.jobs.drain(..take));
            shared.metrics.queue_depth.set(q.jobs.len() as f64);
        }
        if batch.is_empty() {
            continue;
        }

        let loaded = shared.registry.current();
        let n = batch.len();
        rows.clear();
        replies.clear();
        for job in batch.drain(..) {
            rows.push(job.row);
            replies.push((job.enqueued, job.reply, job.explain));
        }
        // `predict_into` is bitwise-identical to `predict` (it runs the
        // same serial block kernel) but reuses `rates` and `scratch`.
        loaded.model.predict_into(&rows, &mut rates, &mut scratch);
        shared.metrics.batch_size.record(n as u64);
        for ((enqueued, reply, explain_buf), (&rate, row)) in
            replies.drain(..).zip(rates.iter().zip(rows.drain(..)))
        {
            shared.metrics.predict_latency_us.record(enqueued.elapsed().as_micros() as u64);
            // Explain submissions rerun the row through the attribution
            // kernel; its prediction fold is bitwise-identical to the
            // batch result, and serving the fold's own target makes
            // `bias + Σ contributions == rate` hold by construction.
            let (rate, explain) = match explain_buf {
                Some(mut contribs) => {
                    let (bias, pred) =
                        loaded.model.explain_row_into(&row, &mut contribs, &mut explain_scratch);
                    debug_assert_eq!(pred.to_bits(), rate.to_bits());
                    let e = Explanation { bias, contributions: contribs, model: loaded.clone() };
                    (pred, Some(e))
                }
                None => (rate, None),
            };
            // The version Arc is pre-built at model load time: cloning
            // is a refcount bump, not a per-batch string allocation.
            reply.deliver(
                Prediction { rate, version: loaded.version_shared.clone(), batch_size: n, explain },
                row,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ModelRegistry, ServeSchema};
    use wdt_features::Dataset;
    use wdt_model::{FitConfig, FittedModel, ModelKind};

    fn test_registry(name: &str) -> (Arc<ModelRegistry>, FittedModel) {
        let dir = std::env::temp_dir().join("wdt-batcher-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let schema = ServeSchema::prediction();
        let w = schema.width();
        let x: Vec<Vec<f64>> =
            (0..200).map(|i| (0..w).map(|j| ((i * (j + 2)) % 19) as f64).collect()).collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] + r[1] * r[1] + r[5]).collect();
        let model = FittedModel::fit(
            &Dataset::new(schema.names().to_vec(), x, y),
            ModelKind::Gbdt,
            &FitConfig::default(),
        )
        .expect("fit");
        std::fs::write(dir.join("v1.json"), model.to_json()).unwrap();
        let offline = FittedModel::from_json(&model.to_json()).unwrap();
        (Arc::new(ModelRegistry::open(dir, schema).unwrap()), offline)
    }

    #[test]
    fn batched_predictions_match_offline_bitwise() {
        let (registry, offline) = test_registry("bitwise");
        let metrics = Arc::new(ServerMetrics::new());
        let batcher = Batcher::start(registry.clone(), metrics.clone(), BatchConfig::default());
        let w = registry.schema().width();

        let rows: Vec<Vec<f64>> =
            (0..64).map(|i| (0..w).map(|j| ((i + j * 7) % 23) as f64 / 3.0).collect()).collect();
        let handles: Vec<_> =
            rows.iter().map(|row| batcher.submit(row.clone()).expect("admit")).collect();
        for (row, rx) in rows.iter().zip(handles) {
            let p = rx.recv().expect("reply");
            let expect = offline.predict_row(row);
            assert_eq!(p.rate.to_bits(), expect.to_bits(), "row {row:?}");
            assert_eq!(&*p.version, "v1");
            assert!(p.batch_size >= 1);
        }
        assert!(metrics.batch_size.count() >= 1);
        batcher.shutdown();
    }

    #[test]
    fn explained_predictions_reconstruct_the_served_rate_bitwise() {
        let (registry, offline) = test_registry("explain");
        let metrics = Arc::new(ServerMetrics::new());
        let batcher = Batcher::start(registry.clone(), metrics, BatchConfig::default());
        let w = registry.schema().width();
        for i in 0..8usize {
            let row: Vec<f64> = (0..w).map(|j| ((i + j * 5) % 13) as f64 / 2.0).collect();
            let p = batcher.submit_explain(row.clone()).expect("admit").recv().expect("reply");
            let e = p.explain.as_ref().expect("explanation present");
            let fold = e.contributions.iter().fold(e.bias, |a, &c| a + c);
            assert_eq!(fold.to_bits(), p.rate.to_bits(), "row {i}: fold must hit the rate");
            assert_eq!(
                p.rate.to_bits(),
                offline.predict_row(&row).to_bits(),
                "explained rate must equal offline prediction"
            );
            assert_eq!(e.contributions.len(), e.model.model.feature_names().len());
        }
        batcher.shutdown();
    }

    #[test]
    fn overload_sheds_instead_of_blocking() {
        let (registry, _) = test_registry("shed");
        let metrics = Arc::new(ServerMetrics::new());
        // Tiny queue, huge flush, one worker: after the first submission
        // occupies the worker's patience window, the queue fills.
        let cfg = BatchConfig {
            max_batch: 4,
            flush: Duration::from_millis(300),
            queue_cap: 2,
            workers: 1,
        };
        let batcher = Batcher::start(registry.clone(), metrics, cfg);
        let w = registry.schema().width();

        let mut admitted = Vec::new();
        let mut shed = 0usize;
        for _ in 0..32 {
            match batcher.submit(vec![1.0; w]) {
                Ok(rx) => admitted.push(rx),
                Err(SubmitError::Overloaded) => shed += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(shed > 0, "expected overload shedding");
        // Every admitted request still completes.
        for rx in admitted {
            rx.recv_timeout(Duration::from_secs(5)).expect("admitted request must complete");
        }
        batcher.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_work() {
        let (registry, _) = test_registry("drain");
        let metrics = Arc::new(ServerMetrics::new());
        let cfg = BatchConfig { flush: Duration::from_millis(50), ..Default::default() };
        let batcher = Batcher::start(registry.clone(), metrics, cfg);
        let w = registry.schema().width();
        let handles: Vec<_> =
            (0..16).map(|_| batcher.submit(vec![2.0; w]).expect("admit")).collect();
        batcher.shutdown();
        for rx in handles {
            rx.recv_timeout(Duration::from_secs(1)).expect("drained reply");
        }
        // Post-shutdown submissions are refused.
        assert_eq!(batcher.submit(vec![0.0; w]).err(), Some(SubmitError::ShuttingDown));
    }
}
