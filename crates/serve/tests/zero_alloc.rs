//! Allocation-count regression test for the `/predict` hot path.
//!
//! The PR that introduced the schema-aware row scanner, coalesced
//! writes, and reusable per-connection/per-shard scratch claims a
//! **zero-allocation steady state**: once a keep-alive connection and
//! the batcher's worker-local buffers are warmed up, serving a burst of
//! pipelined `/predict` requests touches the heap zero times — across
//! every thread in the process (poller shard, batch worker, and this
//! test acting as the client).
//!
//! The test installs a counting `#[global_allocator]`, warms the server
//! with identical bursts until every reusable buffer has reached its
//! high-water capacity, then arms the counter and drives more of the
//! same traffic. Any `alloc`/`realloc` anywhere in the process while
//! armed fails the test with the observed count.
//!
//! The client side is deliberately primitive — preallocated request
//! bytes, one `write_all` per burst, responses drained into a
//! preallocated buffer and framed by counting `b'}'` body terminators
//! (each response body is exactly one flat JSON object; heads contain
//! no `}`) — so the *measurement* itself cannot allocate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use wdt_model::{FitConfig, FittedModel, ModelKind};
use wdt_serve::{BatchConfig, EventLoopServer, ModelRegistry, ServeConfig, ServeSchema};
use wdt_types::JsonValue;

/// Counts heap acquisitions (alloc + realloc) process-wide while armed.
/// Deallocations are uncounted: dropping warmed scratch on shutdown is
/// fine, acquiring fresh memory per request is the regression.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Requests per pipelined burst. Below the event loop's pipeline cap
/// and the batcher's `max_batch`, so nothing sheds or stalls.
const BURST: usize = 32;
/// Warm-up bursts: enough for every amortized-growth buffer (parser
/// window, output queue, batch/reply vectors, row pool) to reach its
/// steady-state capacity.
const WARMUP_BURSTS: usize = 64;
/// Measured bursts while the counter is armed.
const ARMED_BURSTS: usize = 32;

fn quick_registry(name: &str) -> Arc<ModelRegistry> {
    let dir = std::env::temp_dir().join("wdt-serve-zero-alloc").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("model dir");
    let schema = ServeSchema::prediction();
    let w = schema.width();
    let x: Vec<Vec<f64>> =
        (0..120).map(|i| (0..w).map(|j| ((i * (j + 3)) % 17) as f64).collect()).collect();
    let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] + r[1]).collect();
    let model = FittedModel::fit(
        &wdt_features::Dataset::new(schema.names().to_vec(), x, y),
        ModelKind::Gbdt,
        &FitConfig::default(),
    )
    .expect("fit");
    std::fs::write(dir.join("v1.json"), model.to_json()).expect("persist");
    Arc::new(ModelRegistry::open(dir, schema).expect("open"))
}

/// One schema-ordered `/predict` body with small integral values (their
/// JSON round-trip is short and, more importantly, deterministic).
fn predict_body(schema: &ServeSchema) -> String {
    JsonValue::Obj(
        schema
            .names()
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), JsonValue::Num(((i % 7) + 1) as f64)))
            .collect(),
    )
    .to_string()
}

/// Drain exactly `n` responses by counting body-terminating `}` bytes.
fn read_burst(stream: &mut TcpStream, buf: &mut [u8], n: usize) {
    let mut seen = 0usize;
    while seen < n {
        let got = stream.read(buf).expect("read burst");
        assert!(got > 0, "server closed mid-burst");
        seen += buf[..got].iter().filter(|&&b| b == b'}').count();
    }
    assert_eq!(seen, n, "response framing drifted");
}

/// Drive warm-up plus an armed window of pipelined bursts against
/// `path` (`/predict` or `/explain` — both render flat single-`}`
/// bodies) and return the number of heap acquisitions observed while
/// armed.
fn steady_state_allocs(path: &str, dirname: &str) -> u64 {
    let registry = quick_registry(dirname);
    let schema_body = predict_body(registry.schema());
    let cfg = ServeConfig {
        port: 0,
        workers: 1,
        acceptors: 1,
        request_deadline: Duration::from_secs(5),
        batch: BatchConfig {
            max_batch: BURST,
            flush: Duration::from_micros(50),
            queue_cap: 1024,
            workers: 1,
        },
        explain_top: 5,
    };
    let server = EventLoopServer::start(registry, cfg).expect("start");

    // Pre-render the whole pipelined burst once; the armed loop only
    // replays these bytes.
    let one = format!(
        "POST {path} HTTP/1.1\r\nHost: wdt\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{}",
        schema_body.len(),
        schema_body
    );
    let burst: Vec<u8> = one.as_bytes().repeat(BURST);
    let mut readbuf = vec![0u8; 256 * 1024];

    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");

    // Sanity: the very first response is a 200 with a JSON body.
    stream.write_all(one.as_bytes()).expect("first request");
    let got = stream.read(&mut readbuf).expect("first response");
    let head = std::str::from_utf8(&readbuf[..got.min(64)]).expect("utf8 head");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "unexpected first response: {head}");
    let already = readbuf[..got].iter().filter(|&&b| b == b'}').count();
    read_burst(&mut stream, &mut readbuf, 1_usize.saturating_sub(already));

    // Warm-up: grow every reusable buffer to its high-water mark.
    for _ in 0..WARMUP_BURSTS {
        stream.write_all(&burst).expect("warmup write");
        read_burst(&mut stream, &mut readbuf, BURST);
    }

    // Armed window: identical traffic, zero heap acquisitions allowed.
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..ARMED_BURSTS {
        stream.write_all(&burst).expect("armed write");
        read_burst(&mut stream, &mut readbuf, BURST);
    }
    ARMED.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);

    drop(stream);
    server.shutdown();
    allocs
}

#[test]
fn steady_state_predict_burst_allocates_nothing() {
    let allocs = steady_state_allocs("/predict", "predict");
    assert_eq!(
        allocs,
        0,
        "steady-state /predict path allocated {allocs} times across {} requests",
        ARMED_BURSTS * BURST
    );
}

#[test]
fn steady_state_explain_burst_allocates_nothing() {
    let allocs = steady_state_allocs("/explain", "explain");
    assert_eq!(
        allocs,
        0,
        "steady-state /explain path allocated {allocs} times across {} requests",
        ARMED_BURSTS * BURST
    );
}
