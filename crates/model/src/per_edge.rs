//! Per-edge model training (paper §5.1–§5.3).
//!
//! For every eligible edge (≥ `min_transfers` transfers above the rate
//! threshold), fit a linear and a gradient-boosted model on a 70/30 split,
//! and fit explanation models (with `Nflt`) on the full edge data to get
//! the Figure 9/12 significance circles.

use crate::pipeline::{build_dataset, EvalReport, FitConfig, FittedModel, ModelKind};
use rayon::prelude::*;
use wdt_features::{eligible_edges, threshold_filter, TransferFeatures};
use wdt_types::EdgeId;

/// One edge's experiment outcome.
pub struct EdgeExperiment {
    /// The edge.
    pub edge: EdgeId,
    /// Transfers used (after threshold filtering).
    pub n_samples: usize,
    /// Linear model evaluation on the held-out 30%.
    pub lr: EvalReport,
    /// Gradient-boosted model evaluation on the held-out 30%.
    pub xgb: EvalReport,
    /// Figure 9: linear significance per feature (includes `Nflt`), with
    /// eliminated features reported as `None` (the red crosses).
    pub lr_significance: Vec<(String, Option<f64>)>,
    /// Figure 12: boosted importance per feature, same convention.
    pub xgb_importance: Vec<(String, Option<f64>)>,
}

/// Configuration of a per-edge experiment run.
#[derive(Debug, Clone)]
pub struct PerEdgeConfig {
    /// Rate threshold as a fraction of `Rmax(edge)` (paper: 0.5).
    pub threshold: f64,
    /// Minimum post-filter transfers for an edge to qualify (paper: 300).
    pub min_transfers: usize,
    /// Cap on the number of edges modeled (paper: 30). `usize::MAX` = all.
    pub max_edges: usize,
    /// Train fraction (paper: 0.7).
    pub train_frac: f64,
    /// Split seed.
    pub seed: u64,
    /// Pipeline configuration.
    pub fit: FitConfig,
}

impl Default for PerEdgeConfig {
    fn default() -> Self {
        PerEdgeConfig {
            threshold: 0.5,
            min_transfers: 300,
            max_edges: 30,
            train_frac: 0.7,
            seed: 0xED6E,
            fit: FitConfig::default(),
        }
    }
}

/// Significance of every feature in the *full* (explanation) dataset:
/// eliminated features become `None`.
fn full_significance(model: &FittedModel, all_names: &[String]) -> Vec<(String, Option<f64>)> {
    let sig = model.significance();
    all_names
        .iter()
        .map(|n| {
            let v = sig.iter().find(|(name, _)| name == n).map(|(_, v)| *v);
            (n.clone(), v)
        })
        .collect()
}

/// Run the per-edge experiments. Edges are processed in descending sample
/// count; training parallelizes across edges with Rayon.
pub fn run_per_edge(features: &[TransferFeatures], cfg: &PerEdgeConfig) -> Vec<EdgeExperiment> {
    let filtered = threshold_filter(features, cfg.threshold);
    let mut edges = eligible_edges(features, cfg.threshold, cfg.min_transfers);
    edges.truncate(cfg.max_edges);

    edges
        .par_iter()
        .filter_map(|&(edge, _)| {
            let edge_feats: Vec<TransferFeatures> =
                filtered.iter().filter(|f| f.edge == edge).cloned().collect();
            run_one_edge(edge, &edge_feats, cfg)
        })
        .collect()
}

/// Fit LR + GBDT prediction models and explanation models on one edge's
/// (already filtered) transfers.
pub fn run_one_edge(
    edge: EdgeId,
    edge_feats: &[TransferFeatures],
    cfg: &PerEdgeConfig,
) -> Option<EdgeExperiment> {
    if edge_feats.is_empty() {
        return None;
    }
    // Prediction models: no Nflt, 70/30 split.
    let data = build_dataset(edge_feats, false);
    let (train, test) =
        data.split(cfg.train_frac, cfg.seed ^ edge.src.0 as u64 ^ (edge.dst.0 as u64) << 32);
    let lr_model = FittedModel::fit(&train, ModelKind::Linear, &cfg.fit)?;
    let xgb_model = FittedModel::fit(&train, ModelKind::Gbdt, &cfg.fit)?;
    let lr = lr_model.evaluate(&test);
    let xgb = xgb_model.evaluate(&test);

    // Explanation models: with Nflt, full data.
    let explain_data = build_dataset(edge_feats, true);
    let all_names = explain_data.names.clone();
    let lr_explain = FittedModel::fit(&explain_data, ModelKind::Linear, &cfg.fit)?;
    let xgb_explain = FittedModel::fit(&explain_data, ModelKind::Gbdt, &cfg.fit)?;

    Some(EdgeExperiment {
        edge,
        n_samples: edge_feats.len(),
        lr,
        xgb,
        lr_significance: full_significance(&lr_explain, &all_names),
        xgb_importance: full_significance(&xgb_explain, &all_names),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdt_types::{EndpointId, TransferId};

    /// SplitMix64-based uniform draw, decorrelated across `(i, k)`.
    fn unif(seed: u64, i: u64, k: u64) -> f64 {
        let mut z = seed
            .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(k.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Synthetic edge whose rate depends nonlinearly on competing load.
    fn synth_edge(n: usize, edge: EdgeId, seed: u64) -> Vec<TransferFeatures> {
        (0..n)
            .map(|i| {
                let u = |k: u64| unif(seed, i as u64, k);
                let k_sout = 400.0e6 * u(3);
                let k_din = 400.0e6 * u(7);
                let g_dst = 30.0 * u(11);
                let n_b = 1.0e9 * (0.2 + 5.0 * u(17));
                // Nonlinear ground truth with interactions + mild noise.
                let rate = 800.0e6
                    / (1.0 + (k_sout + 2.0 * k_din) / 300.0e6)
                    / (1.0 + 0.02 * g_dst * g_dst / 30.0)
                    * (n_b / (n_b + 2.0e8))
                    * (1.0 + 0.03 * (u(23) - 0.5));
                TransferFeatures {
                    id: TransferId(i as u64),
                    edge,
                    start: i as f64 * 10.0,
                    end: i as f64 * 10.0 + 100.0,
                    rate,
                    k_sout,
                    k_din,
                    c: 4.0,
                    p: 2.0,
                    s_sout: k_sout / 1e7,
                    s_sin: 0.0,
                    s_dout: 0.0,
                    s_din: k_din / 1e7,
                    k_sin: 0.0,
                    k_dout: 0.0,
                    n_d: 5.0,
                    n_b,
                    n_flt: if u(29) > 0.9 { 1.0 } else { 0.0 },
                    g_src: 10.0 * u(31),
                    g_dst,
                    n_f: 100.0,
                }
            })
            .collect()
    }

    fn quick_cfg() -> PerEdgeConfig {
        // Threshold 0 keeps all synthetic samples: the generator has no
        // hidden load to filter out, and tests gate on min_transfers.
        let mut cfg = PerEdgeConfig { min_transfers: 100, threshold: 0.0, ..Default::default() };
        cfg.fit.gbdt.n_rounds = 60;
        cfg
    }

    #[test]
    fn xgb_beats_lr_on_nonlinear_edge() {
        let edge = EdgeId::new(EndpointId(0), EndpointId(1));
        let feats = synth_edge(800, edge, 41);
        let exps = run_per_edge(&feats, &quick_cfg());
        assert_eq!(exps.len(), 1);
        let e = &exps[0];
        assert!(e.xgb.mdape < e.lr.mdape, "xgb {} vs lr {}", e.xgb.mdape, e.lr.mdape);
        assert!(e.xgb.mdape < 10.0, "xgb MdAPE {}", e.xgb.mdape);
    }

    #[test]
    fn constant_c_p_are_eliminated() {
        let edge = EdgeId::new(EndpointId(0), EndpointId(1));
        let feats = synth_edge(500, edge, 17);
        let exps = run_per_edge(&feats, &quick_cfg());
        let e = &exps[0];
        let c_sig = e.lr_significance.iter().find(|(n, _)| n == "C").unwrap();
        let p_sig = e.lr_significance.iter().find(|(n, _)| n == "P").unwrap();
        assert!(c_sig.1.is_none(), "C should be eliminated (red cross)");
        assert!(p_sig.1.is_none());
        // Load features survive.
        let k = e.lr_significance.iter().find(|(n, _)| n == "Ksout").unwrap();
        assert!(k.1.is_some());
    }

    #[test]
    fn threshold_and_min_transfers_gate_edges() {
        let edge = EdgeId::new(EndpointId(0), EndpointId(1));
        let feats = synth_edge(80, edge, 9);
        // min_transfers 100 > 80 available → no edges qualify.
        assert!(run_per_edge(&feats, &quick_cfg()).is_empty());
    }

    #[test]
    fn multiple_edges_processed_independently() {
        let e1 = EdgeId::new(EndpointId(0), EndpointId(1));
        let e2 = EdgeId::new(EndpointId(2), EndpointId(3));
        let mut feats = synth_edge(400, e1, 5);
        feats.extend(synth_edge(400, e2, 6));
        let exps = run_per_edge(&feats, &quick_cfg());
        assert_eq!(exps.len(), 2);
        let edges: Vec<EdgeId> = exps.iter().map(|e| e.edge).collect();
        assert!(edges.contains(&e1) && edges.contains(&e2));
    }

    #[test]
    fn max_edges_caps_output() {
        let mut feats = Vec::new();
        for i in 0..4 {
            feats.extend(synth_edge(
                300,
                EdgeId::new(EndpointId(i), EndpointId(i + 10)),
                i as u64 + 1,
            ));
        }
        let cfg = PerEdgeConfig { max_edges: 2, ..quick_cfg() };
        assert_eq!(run_per_edge(&feats, &cfg).len(), 2);
    }
}
