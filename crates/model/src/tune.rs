//! Automated hyperparameter search (the paper's AutoMOMML future-work
//! pointer, reduced to practice).
//!
//! §8 suggests "more advanced machine learning methods, for example
//! multiobjective modeling with machine learning (AutoMOMML), can yield
//! better models". We implement the useful core: a K-fold cross-validated
//! grid search over the boosted model's hyperparameters, parallelized over
//! candidates with Rayon. Deterministic given the seed.

use crate::pipeline::{FitConfig, FittedModel, ModelKind};
use rayon::prelude::*;
use wdt_features::Dataset;
use wdt_ml::{kfold_indices, mdape, GbdtParams, TreeParams};

/// One evaluated candidate.
#[derive(Debug, Clone, Copy)]
pub struct TuneResult {
    /// The hyperparameters.
    pub params: GbdtParams,
    /// Mean cross-validated MdAPE (%).
    pub cv_mdape: f64,
}

/// A compact default grid: learning rate × depth × rounds (18 candidates).
pub fn default_grid() -> Vec<GbdtParams> {
    let mut grid = Vec::new();
    for &eta in &[0.05, 0.1, 0.2] {
        for &max_depth in &[3usize, 5, 7] {
            for &n_rounds in &[100usize, 200] {
                grid.push(GbdtParams {
                    n_rounds,
                    eta,
                    tree: TreeParams { max_depth, ..TreeParams::default() },
                    ..GbdtParams::default()
                });
            }
        }
    }
    grid
}

fn subset(data: &Dataset, idx: &[usize]) -> Dataset {
    Dataset::new(
        data.names.clone(),
        idx.iter().map(|&i| data.x[i].clone()).collect(),
        idx.iter().map(|&i| data.y[i]).collect(),
    )
}

/// Cross-validated MdAPE of one candidate over pre-sliced folds. The
/// per-fold loop fans out across the thread pool; fold metrics come back
/// in fold order and are reduced sequentially, so the score is identical
/// serial vs. threaded.
fn cv_mdape(fold_sets: &[(Dataset, Dataset)], params: GbdtParams) -> f64 {
    let per_fold: Vec<f64> = fold_sets
        .par_iter()
        .map(|(train, test)| {
            let cfg = FitConfig { gbdt: params, ..FitConfig::default() };
            let Some(model) = FittedModel::fit(train, ModelKind::Gbdt, &cfg) else {
                return f64::INFINITY;
            };
            let pred = model.predict(&test.x);
            mdape(&pred, &test.y)
        })
        .collect();
    let mut total = 0.0;
    let mut n = 0usize;
    for m in per_fold {
        if m.is_finite() {
            total += m;
            n += 1;
        }
    }
    if n == 0 {
        f64::INFINITY
    } else {
        total / n as f64
    }
}

/// Grid-search the boosted model's hyperparameters with K-fold CV.
///
/// Fold train/test subsets are materialized **once** and shared by every
/// candidate (the grid only changes hyperparameters, never the split), so
/// an 18-candidate search clones the data K times instead of 18·K times.
///
/// Returns every candidate's score sorted best-first (so callers can
/// inspect the landscape), or `None` for degenerate inputs.
pub fn tune_gbdt(
    data: &Dataset,
    grid: &[GbdtParams],
    folds: usize,
    seed: u64,
) -> Option<Vec<TuneResult>> {
    if data.len() < folds * 2 || grid.is_empty() {
        return None;
    }
    let fold_sets: Vec<(Dataset, Dataset)> = kfold_indices(data.len(), folds, seed)
        .iter()
        .map(|(train_idx, test_idx)| (subset(data, train_idx), subset(data, test_idx)))
        .collect();
    let mut results: Vec<TuneResult> = grid
        .par_iter()
        .map(|&params| TuneResult { params, cv_mdape: cv_mdape(&fold_sets, params) })
        .collect();
    results.sort_by(|a, b| a.cv_mdape.partial_cmp(&b.cv_mdape).expect("finite or inf"));
    Some(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(n: usize) -> Dataset {
        let x: Vec<Vec<f64>> =
            (0..n).map(|i| vec![(i % 17) as f64, (i % 9) as f64 - 4.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| 50.0 + 3.0 * r[0] + 8.0 * r[1] * r[1]).collect();
        Dataset::new(vec!["a".into(), "b".into()], x, y)
    }

    fn small_grid() -> Vec<GbdtParams> {
        vec![
            // Deliberately weak: one round, shallow.
            GbdtParams {
                n_rounds: 1,
                eta: 0.1,
                tree: TreeParams { max_depth: 1, ..TreeParams::default() },
                ..GbdtParams::default()
            },
            // Reasonable.
            GbdtParams { n_rounds: 80, eta: 0.1, ..GbdtParams::default() },
        ]
    }

    #[test]
    fn picks_the_stronger_candidate() {
        let data = synth(400);
        let results = tune_gbdt(&data, &small_grid(), 3, 7).expect("tunable");
        assert_eq!(results.len(), 2);
        // Best first; the 80-round model must beat the 1-round stump.
        assert!(results[0].cv_mdape < results[1].cv_mdape);
        assert_eq!(results[0].params.n_rounds, 80);
    }

    #[test]
    fn deterministic() {
        let data = synth(300);
        let a = tune_gbdt(&data, &small_grid(), 3, 9).unwrap();
        let b = tune_gbdt(&data, &small_grid(), 3, 9).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cv_mdape, y.cv_mdape);
        }
    }

    #[test]
    fn degenerate_inputs_return_none() {
        let data = synth(4);
        assert!(tune_gbdt(&data, &small_grid(), 3, 7).is_none());
        let data = synth(100);
        assert!(tune_gbdt(&data, &[], 3, 7).is_none());
    }

    #[test]
    fn default_grid_has_varied_candidates() {
        let g = default_grid();
        assert_eq!(g.len(), 18);
        let etas: std::collections::BTreeSet<u64> =
            g.iter().map(|p| (p.eta * 100.0) as u64).collect();
        assert_eq!(etas.len(), 3);
    }
}
