//! Operational advice from the learned models — the paper's §8 use cases.
//!
//! Two concrete recommendations fall straight out of the study:
//!
//! * **Endpoint concurrency caps** (Figure 4 / conclusions): aggregate
//!   throughput rises with the instantaneous GridFTP instance count, peaks,
//!   then declines — so a busy endpoint should cap admitted work near the
//!   Weibull peak. [`recommend_endpoint_concurrency`] fits that curve from
//!   the log and returns the cap.
//! * **Transfer scheduling** (abstract: "our predictions can be used for
//!   distributed workflow scheduling and optimization"): given a trained
//!   rate model and current competing-load observations,
//!   [`schedule_advice`] predicts the rate *now* versus under the edge's
//!   historically quiet load levels, quantifying the payoff of deferring.

use crate::pipeline::{build_dataset, FittedModel};
use wdt_features::{bucket_by_concurrency, concurrency_profile, TransferFeatures};
use wdt_ml::{quantile, WeibullCurve};
use wdt_types::{EndpointId, TransferRecord};

/// Outcome of the Figure 4 concurrency analysis for one endpoint.
#[derive(Debug, Clone, Copy)]
pub struct ConcurrencyAdvice {
    /// The fitted throughput-vs-instances curve.
    pub curve: WeibullCurve,
    /// The instance count at which aggregate throughput peaks.
    pub recommended_cap: f64,
    /// Highest instance count actually observed in the log.
    pub max_observed: f64,
}

/// Fit the endpoint's concurrency curve and recommend an instance cap.
///
/// Returns `None` when the log has too little concurrency variety at the
/// endpoint, or when throughput is still rising at the highest observed
/// concurrency (no cap warranted yet — the `max_observed` answer would be
/// extrapolation).
pub fn recommend_endpoint_concurrency(
    log: &[TransferRecord],
    endpoint: EndpointId,
) -> Option<ConcurrencyAdvice> {
    let samples = concurrency_profile(log, endpoint);
    let buckets = bucket_by_concurrency(&samples);
    let total_w: f64 = buckets.iter().map(|b| b.2).sum();
    let pts: Vec<(f64, f64)> =
        buckets.iter().filter(|b| b.2 >= 0.002 * total_w).map(|b| (b.0, b.1)).collect();
    let curve = WeibullCurve::fit(&pts)?;
    let max_observed = pts.last()?.0;
    let peak = curve.peak_x();
    if curve.k <= 1.0 || peak > 1.5 * max_observed {
        return None; // monotone within the observed range
    }
    Some(ConcurrencyAdvice { curve, recommended_cap: peak, max_observed })
}

/// What deferring a transfer to a quieter period is worth.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleAdvice {
    /// Predicted rate under the supplied (current) load, bytes/s.
    pub rate_now: f64,
    /// Predicted rate under the edge's historically median load.
    pub rate_typical: f64,
    /// Predicted rate under the edge's historically quiet (p25) load.
    pub rate_quiet: f64,
    /// `rate_quiet / rate_now − 1`: fractional gain from deferring to a
    /// quiet period (negative means now is already better than typical
    /// quiet conditions).
    pub defer_gain: f64,
}

/// Predict the planned transfer's rate under current vs historical load.
///
/// `planned` carries the transfer's characteristics and the *currently
/// observed* competing-load features; `history` supplies the edge's load
/// distribution (only its K/S/G columns are used). Returns `None` if the
/// history is empty.
pub fn schedule_advice(
    model: &FittedModel,
    planned: &TransferFeatures,
    history: &[TransferFeatures],
) -> Option<ScheduleAdvice> {
    if history.is_empty() {
        return None;
    }
    let load_q = |pick: fn(&TransferFeatures) -> f64, q: f64| {
        let v: Vec<f64> = history.iter().map(pick).collect();
        quantile(&v, q)
    };
    let scenario = |q: f64| {
        let mut f = planned.clone();
        f.k_sout = load_q(|h| h.k_sout, q);
        f.k_din = load_q(|h| h.k_din, q);
        f.k_sin = load_q(|h| h.k_sin, q);
        f.k_dout = load_q(|h| h.k_dout, q);
        f.s_sout = load_q(|h| h.s_sout, q);
        f.s_sin = load_q(|h| h.s_sin, q);
        f.s_dout = load_q(|h| h.s_dout, q);
        f.s_din = load_q(|h| h.s_din, q);
        f.g_src = load_q(|h| h.g_src, q);
        f.g_dst = load_q(|h| h.g_dst, q);
        f
    };
    let predict = |f: &TransferFeatures| {
        let data = build_dataset(std::slice::from_ref(f), false);
        model.predict(&data.x)[0].max(0.0)
    };
    let rate_now = predict(planned);
    let rate_typical = predict(&scenario(0.5));
    let rate_quiet = predict(&scenario(0.25));
    Some(ScheduleAdvice {
        rate_now,
        rate_typical,
        rate_quiet,
        defer_gain: rate_quiet / rate_now.max(1.0) - 1.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{FitConfig, ModelKind};
    use wdt_features::Dataset;
    use wdt_types::{Bytes, EdgeId, SimTime, TransferId};

    fn feat(k_sout: f64, rate: f64) -> TransferFeatures {
        TransferFeatures {
            id: TransferId(0),
            edge: EdgeId::new(EndpointId(0), EndpointId(1)),
            start: 0.0,
            end: 100.0,
            rate,
            k_sout,
            k_din: k_sout * 0.5,
            c: 4.0,
            p: 2.0,
            s_sout: k_sout / 1e7,
            s_sin: 0.0,
            s_dout: 0.0,
            s_din: 0.0,
            k_sin: 0.0,
            k_dout: 0.0,
            n_d: 1.0,
            n_b: 1e9,
            n_flt: 0.0,
            g_src: 4.0,
            g_dst: 4.0,
            n_f: 10.0,
        }
    }

    fn trained_model(history: &[TransferFeatures]) -> FittedModel {
        let data = build_dataset(history, false);
        let mut cfg = FitConfig::default();
        cfg.gbdt.n_rounds = 60;
        FittedModel::fit(&data, ModelKind::Gbdt, &cfg).expect("fit")
    }

    fn history() -> Vec<TransferFeatures> {
        (0..400)
            .map(|i| {
                let u = ((i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15) >> 11) as f64
                    / (1u64 << 53) as f64;
                let k = 6e8 * u;
                feat(k, 8e8 / (1.0 + k / 2e8))
            })
            .collect()
    }

    #[test]
    fn deferring_from_busy_conditions_pays_off() {
        let hist = history();
        let model = trained_model(&hist);
        // Currently very busy: near-max contention.
        let mut now = feat(5.5e8, 0.0);
        now.rate = 0.0;
        let advice = schedule_advice(&model, &now, &hist).expect("history nonempty");
        assert!(
            advice.defer_gain > 0.2,
            "expected a clear gain from deferring, got {}",
            advice.defer_gain
        );
        assert!(advice.rate_quiet > advice.rate_typical);
        assert!(advice.rate_typical > advice.rate_now);
    }

    #[test]
    fn quiet_conditions_mean_no_gain() {
        let hist = history();
        let model = trained_model(&hist);
        let now = feat(0.0, 0.0); // idle edge
        let advice = schedule_advice(&model, &now, &hist).expect("history");
        assert!(
            advice.defer_gain <= 0.05,
            "idle edge should not benefit from deferring: {}",
            advice.defer_gain
        );
    }

    #[test]
    fn empty_history_is_none() {
        // A model trained on *something*, but no history to quantify load.
        let hist = history();
        let model = trained_model(&hist);
        assert!(schedule_advice(&model, &feat(0.0, 0.0), &[]).is_none());
    }

    #[test]
    fn concurrency_advice_finds_the_peak() {
        // Synthesize a log whose concurrency curve rises then falls:
        // transfers arrive in increasingly deep waves; deep waves slow down.
        let curve = WeibullCurve { a: 2.0e9, k: 2.5, lambda: 14.0 };
        let mut log = Vec::new();
        let mut id = 0u64;
        for wave in 0..60u64 {
            let depth = 1 + (wave % 30) as usize;
            let agg = curve.eval(depth as f64 * 4.0);
            for k in 0..depth {
                log.push(TransferRecord {
                    id: TransferId(id),
                    src: EndpointId(1),
                    dst: EndpointId(0),
                    start: SimTime::seconds(wave as f64 * 1000.0),
                    end: SimTime::seconds(wave as f64 * 1000.0 + 500.0),
                    bytes: Bytes::new(agg / depth as f64 * 500.0),
                    files: 100,
                    dirs: 1,
                    concurrency: 4,
                    parallelism: 2,
                    faults: 0,
                });
                id += 1;
                let _ = k;
            }
        }
        let advice = recommend_endpoint_concurrency(&log, EndpointId(0)).expect("curve should fit");
        // True peak of the synthetic curve: λ·((k−1)/k)^(1/k) · (we scaled
        // concurrency by 4 instances per wave depth).
        let true_peak = curve.peak_x();
        assert!(
            (advice.recommended_cap - true_peak).abs() < 0.5 * true_peak,
            "cap {} vs true peak {true_peak}",
            advice.recommended_cap
        );
    }

    #[test]
    fn monotone_endpoint_gets_no_cap() {
        // Rate keeps rising with concurrency: no cap warranted.
        let mut log = Vec::new();
        let mut id = 0u64;
        for wave in 0..40u64 {
            let depth = 1 + (wave % 8) as usize;
            for _ in 0..depth {
                log.push(TransferRecord {
                    id: TransferId(id),
                    src: EndpointId(1),
                    dst: EndpointId(0),
                    start: SimTime::seconds(wave as f64 * 1000.0),
                    end: SimTime::seconds(wave as f64 * 1000.0 + 500.0),
                    bytes: Bytes::new(1e8 * 500.0), // each adds full rate
                    files: 10,
                    dirs: 1,
                    concurrency: 4,
                    parallelism: 2,
                    faults: 0,
                });
                id += 1;
            }
        }
        assert!(recommend_endpoint_concurrency(&log, EndpointId(0)).is_none());
    }

    // Silence unused-import warning in this narrow test module.
    #[allow(unused)]
    fn _touch(_d: Dataset) {}
}
