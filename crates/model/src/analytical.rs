//! The analytical upper-bound model (paper §3, Eq. 1).
//!
//! `Rmax ≤ min(DRmax, MMmax, DWmax)`: a transfer can be no faster than the
//! slowest of source-storage read, network, and destination-storage write.
//! On the testbed the three terms are measured directly (see
//! `wdt_sim::instruments`); for production endpoints they are *estimated
//! from history* (§3.2): `DRmax` as the best rate ever observed with the
//! endpoint as source, `DWmax` as the best with it as destination, and
//! `MMmax` from perfSONAR-style probes where available.

use std::collections::BTreeMap;
use wdt_features::TransferFeatures;
use wdt_types::{EdgeId, EndpointId};

/// The three subsystem ceilings of Eq. 1, bytes/s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubsystemCeilings {
    /// Source storage read ceiling.
    pub dr_max: f64,
    /// Memory-to-memory (network) ceiling.
    pub mm_max: f64,
    /// Destination storage write ceiling.
    pub dw_max: f64,
}

/// Which subsystem limits an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    /// Source disk read is the minimum.
    DiskRead,
    /// The network is the minimum.
    Network,
    /// Destination disk write is the minimum.
    DiskWrite,
}

impl SubsystemCeilings {
    /// Eq. 1's bound: the minimum ceiling.
    pub fn bound(&self) -> f64 {
        self.dr_max.min(self.mm_max).min(self.dw_max)
    }

    /// The limiting subsystem.
    pub fn limiter(&self) -> Limiter {
        let b = self.bound();
        if b == self.dr_max {
            Limiter::DiskRead
        } else if b == self.mm_max {
            Limiter::Network
        } else {
            Limiter::DiskWrite
        }
    }
}

/// Historically estimated per-endpoint disk ceilings (§3.2): the best rate
/// ever observed with the endpoint as source (read) / destination (write).
pub fn historical_disk_ceilings(features: &[TransferFeatures]) -> BTreeMap<EndpointId, (f64, f64)> {
    let mut map: BTreeMap<EndpointId, (f64, f64)> = BTreeMap::new();
    for f in features {
        let src = map.entry(f.edge.src).or_insert((0.0, 0.0));
        src.0 = src.0.max(f.rate);
        let dst = map.entry(f.edge.dst).or_insert((0.0, 0.0));
        dst.1 = dst.1.max(f.rate);
    }
    map
}

/// How well Eq. 1 explains an edge, mirroring the paper's §3.2 validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundVerdict {
    /// Best observed rate falls in `[0.8, 1.2]·bound`: the bound explains
    /// the edge.
    Explained,
    /// Best observed rate falls in the interval only after adding back the
    /// known competing Globus load `max(Ksout, Kdin)`.
    ExplainedWithLoad,
    /// Best observed rate is well below the bound: unknown load or
    /// misconfiguration.
    Underperforming,
    /// Best observed rate exceeds 1.2·bound: the ceiling estimate is wrong
    /// (e.g. the perfSONAR host is narrower than the DTN pool, §3.2).
    ExceedsBound,
}

/// Validate Eq. 1 on one edge given its transfers and the estimated
/// ceilings. Follows §3.2: compare the best observed rate (and, failing
/// that, best rate + known competing load) against `[0.8, 1.2]·bound`.
pub fn validate_bound(
    edge_transfers: &[&TransferFeatures],
    ceilings: &SubsystemCeilings,
) -> BoundVerdict {
    let bound = ceilings.bound();
    let best = edge_transfers.iter().map(|f| f.rate).fold(0.0f64, f64::max);
    if best > 1.2 * bound {
        return BoundVerdict::ExceedsBound;
    }
    if best >= 0.8 * bound {
        return BoundVerdict::Explained;
    }
    let best_with_load =
        edge_transfers.iter().map(|f| f.rate + f.k_sout.max(f.k_din)).fold(0.0f64, f64::max);
    if best_with_load >= 0.8 * bound && best_with_load <= 1.2 * bound {
        BoundVerdict::ExplainedWithLoad
    } else {
        BoundVerdict::Underperforming
    }
}

/// Eq. 1 applied across a log: per-edge verdicts plus limiter counts (the
/// paper's "11 limited by disk read, 14 by network, 20 by disk write").
pub fn classify_edges(
    features: &[TransferFeatures],
    mm_max: &BTreeMap<EdgeId, f64>,
) -> BTreeMap<EdgeId, (BoundVerdict, Limiter)> {
    let disks = historical_disk_ceilings(features);
    let by_edge = wdt_features::group_by_edge(features);
    let mut out = BTreeMap::new();
    for (edge, transfers) in by_edge {
        let Some(&mm) = mm_max.get(&edge) else { continue };
        let ceilings = SubsystemCeilings {
            dr_max: disks.get(&edge.src).map_or(0.0, |d| d.0),
            mm_max: mm,
            dw_max: disks.get(&edge.dst).map_or(0.0, |d| d.1),
        };
        out.insert(edge, (validate_bound(&transfers, &ceilings), ceilings.limiter()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdt_types::TransferId;

    fn feat(src: u32, dst: u32, rate: f64, k_sout: f64, k_din: f64) -> TransferFeatures {
        TransferFeatures {
            id: TransferId(0),
            edge: EdgeId::new(EndpointId(src), EndpointId(dst)),
            start: 0.0,
            end: 1.0,
            rate,
            k_sout,
            k_din,
            c: 4.0,
            p: 2.0,
            s_sout: 0.0,
            s_sin: 0.0,
            s_dout: 0.0,
            s_din: 0.0,
            k_sin: 0.0,
            k_dout: 0.0,
            n_d: 1.0,
            n_b: rate,
            n_flt: 0.0,
            g_src: 0.0,
            g_dst: 0.0,
            n_f: 1.0,
        }
    }

    #[test]
    fn bound_is_min_and_limiter_names_it() {
        let c = SubsystemCeilings { dr_max: 900.0, mm_max: 950.0, dw_max: 780.0 };
        assert_eq!(c.bound(), 780.0);
        assert_eq!(c.limiter(), Limiter::DiskWrite);
        let c = SubsystemCeilings { dr_max: 700.0, mm_max: 950.0, dw_max: 780.0 };
        assert_eq!(c.limiter(), Limiter::DiskRead);
        let c = SubsystemCeilings { dr_max: 900.0, mm_max: 650.0, dw_max: 780.0 };
        assert_eq!(c.limiter(), Limiter::Network);
    }

    #[test]
    fn historical_ceilings_track_roles() {
        let fs = vec![
            feat(0, 1, 100.0, 0.0, 0.0),
            feat(0, 1, 150.0, 0.0, 0.0),
            feat(1, 0, 90.0, 0.0, 0.0),
        ];
        let d = historical_disk_ceilings(&fs);
        assert_eq!(d[&EndpointId(0)], (150.0, 90.0));
        assert_eq!(d[&EndpointId(1)], (90.0, 150.0));
    }

    #[test]
    fn verdicts() {
        let c = SubsystemCeilings { dr_max: 100.0, mm_max: 100.0, dw_max: 100.0 };
        let explained = [feat(0, 1, 95.0, 0.0, 0.0)];
        let refs: Vec<&TransferFeatures> = explained.iter().collect();
        assert_eq!(validate_bound(&refs, &c), BoundVerdict::Explained);

        let with_load = [feat(0, 1, 60.0, 35.0, 0.0)];
        let refs: Vec<&TransferFeatures> = with_load.iter().collect();
        assert_eq!(validate_bound(&refs, &c), BoundVerdict::ExplainedWithLoad);

        let under = [feat(0, 1, 20.0, 5.0, 0.0)];
        let refs: Vec<&TransferFeatures> = under.iter().collect();
        assert_eq!(validate_bound(&refs, &c), BoundVerdict::Underperforming);

        let exceeds = [feat(0, 1, 130.0, 0.0, 0.0)];
        let refs: Vec<&TransferFeatures> = exceeds.iter().collect();
        assert_eq!(validate_bound(&refs, &c), BoundVerdict::ExceedsBound);
    }

    #[test]
    fn classify_edges_uses_per_edge_mm() {
        let fs = vec![feat(0, 1, 95.0, 0.0, 0.0), feat(1, 0, 60.0, 0.0, 0.0)];
        let mut mm = BTreeMap::new();
        mm.insert(EdgeId::new(EndpointId(0), EndpointId(1)), 100.0);
        let verdicts = classify_edges(&fs, &mm);
        // Only the probed edge is classified.
        assert_eq!(verdicts.len(), 1);
        let (v, _) = verdicts[&EdgeId::new(EndpointId(0), EndpointId(1))];
        assert_eq!(v, BoundVerdict::Explained);
    }
}
