//! The LMT-augmented model (paper §5.5.2).
//!
//! Join per-transfer storage-load observations (from the LMT monitor) onto
//! the Table 2 features: CPU load on the source and destination OSSes, disk
//! read on the source OSTs, disk write on the destination OSTs. A model
//! with these four extra features sees the load that is *invisible* in
//! transfer logs; the paper's 95th-percentile error drops from 9.29% to
//! 1.26% when they are added.

use crate::pipeline::{build_dataset, EvalReport, FitConfig, FittedModel, ModelKind};
use wdt_features::{Dataset, TransferFeatures};
use wdt_sim::lmt::{window_means, LmtSample};
use wdt_types::SimTime;

/// The four §5.5.2 storage-load features of one transfer.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StorageLoad {
    /// Mean OSS CPU load at the source during the transfer.
    pub src_oss_cpu: f64,
    /// Mean OSS CPU load at the destination.
    pub dst_oss_cpu: f64,
    /// Mean per-OST disk read at the source, bytes/s.
    pub src_ost_read: f64,
    /// Mean per-OST disk write at the destination, bytes/s.
    pub dst_ost_write: f64,
}

/// Compute each transfer's storage-load features by averaging the monitor
/// samples that fall inside its `[start, end)` window.
pub fn join_storage_load(features: &[TransferFeatures], samples: &[LmtSample]) -> Vec<StorageLoad> {
    features
        .iter()
        .map(|f| {
            let (s, e) = (SimTime::seconds(f.start), SimTime::seconds(f.end));
            let (src_read, _, src_cpu) = window_means(samples, f.edge.src, s, e);
            let (_, dst_write, dst_cpu) = window_means(samples, f.edge.dst, s, e);
            StorageLoad {
                src_oss_cpu: src_cpu,
                dst_oss_cpu: dst_cpu,
                src_ost_read: src_read,
                dst_ost_write: dst_write,
            }
        })
        .collect()
}

/// Build the §5.5.2 dataset: Table 2 features (no `Nflt`) plus the four
/// storage-load columns.
pub fn build_lmt_dataset(features: &[TransferFeatures], loads: &[StorageLoad]) -> Dataset {
    assert_eq!(features.len(), loads.len());
    let mut base = build_dataset(features, false);
    base.names.extend(
        ["OSS_cpu_src", "OSS_cpu_dst", "OST_read_src", "OST_write_dst"]
            .iter()
            .map(|s| s.to_string()),
    );
    for (row, l) in base.x.iter_mut().zip(loads) {
        row.extend([l.src_oss_cpu, l.dst_oss_cpu, l.src_ost_read, l.dst_ost_write]);
    }
    base
}

/// Outcome of the §5.5.2 comparison.
pub struct LmtComparison {
    /// Model without storage-load features (the baseline).
    pub baseline: EvalReport,
    /// Model with the four storage-load features.
    pub augmented: EvalReport,
}

/// Train both models on a 70/30 split and evaluate — the paper's §5.5.2
/// experiment body. Returns `None` when either model fails to fit.
pub fn compare_with_lmt(
    features: &[TransferFeatures],
    samples: &[LmtSample],
    cfg: &FitConfig,
    seed: u64,
) -> Option<LmtComparison> {
    let base = build_dataset(features, false);
    let (b_train, b_test) = base.split(0.7, seed);
    let baseline = FittedModel::fit(&b_train, ModelKind::Gbdt, cfg)?.evaluate(&b_test);

    let loads = join_storage_load(features, samples);
    let aug = build_lmt_dataset(features, &loads);
    let (a_train, a_test) = aug.split(0.7, seed);
    let augmented = FittedModel::fit(&a_train, ModelKind::Gbdt, cfg)?.evaluate(&a_test);
    Some(LmtComparison { baseline, augmented })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdt_storage::LustreFs;
    use wdt_types::{EdgeId, EndpointId, Rate, TransferId};

    fn feat(id: u64, start: f64, end: f64, rate: f64) -> TransferFeatures {
        TransferFeatures {
            id: TransferId(id),
            edge: EdgeId::new(EndpointId(0), EndpointId(1)),
            start,
            end,
            rate,
            k_sout: 0.0,
            k_din: 0.0,
            c: 4.0,
            p: 2.0,
            s_sout: 0.0,
            s_sin: 0.0,
            s_dout: 0.0,
            s_din: 0.0,
            k_sin: 0.0,
            k_dout: 0.0,
            n_d: 1.0,
            // Uniform dataset characteristics, exactly like the paper's
            // §5.5.2 test transfers — otherwise Nb would leak the rate
            // (rate = Nb / duration).
            n_b: 5e9,
            n_flt: 0.0,
            g_src: 0.0,
            g_dst: 0.0,
            n_f: 10.0,
        }
    }

    fn monitor() -> wdt_sim::LmtMonitor {
        wdt_sim::LmtMonitor::new(
            vec![EndpointId(0), EndpointId(1)],
            LustreFs::new(8, Rate::mbps(500.0), 2),
            SimTime::ZERO,
            SimTime::hours(10.0),
        )
    }

    #[test]
    fn join_averages_in_window_only() {
        let m = monitor();
        let samples = vec![
            m.sample(SimTime::seconds(1.0), EndpointId(0), 800e6, 0.0),
            m.sample(SimTime::seconds(6.0), EndpointId(0), 0.0, 0.0),
            m.sample(SimTime::seconds(1.0), EndpointId(1), 0.0, 400e6),
            m.sample(SimTime::seconds(100.0), EndpointId(0), 999e6, 0.0),
        ];
        let fs = vec![feat(0, 0.0, 10.0, 1e8)];
        let loads = join_storage_load(&fs, &samples);
        // src OST read: mean of (800e6/8, 0) = 50 MB/s.
        assert!((loads[0].src_ost_read - 50e6).abs() < 1.0);
        // dst OST write: 400e6/8 = 50 MB/s.
        assert!((loads[0].dst_ost_write - 50e6).abs() < 1.0);
        assert!(loads[0].dst_oss_cpu > 0.0);
    }

    #[test]
    fn lmt_dataset_has_four_extra_columns() {
        let fs = vec![feat(0, 0.0, 10.0, 1e8)];
        let loads = vec![StorageLoad::default()];
        let d = build_lmt_dataset(&fs, &loads);
        assert_eq!(d.width(), 19); // 15 (no Nflt) + 4
        assert!(d.names.iter().any(|n| n == "OST_write_dst"));
    }

    #[test]
    fn hidden_load_features_reduce_error() {
        // Rate is driven by a hidden storage load the base features cannot
        // see; the LMT samples reveal it.
        let m = monitor();
        let mut fs = Vec::new();
        let mut samples = Vec::new();
        for i in 0..500u64 {
            let start = i as f64 * 20.0;
            let end = start + 10.0;
            let h = (i + 1).wrapping_mul(0x9E3779B97F4A7C15);
            let hidden = ((h >> 7) % 1000) as f64 / 1000.0; // hidden write load 0..1
            let rate = 5e8 / (1.0 + 4.0 * hidden);
            let mut f = feat(i, start, end, rate);
            // A little uninformative variation so the baseline model has a
            // surviving feature (otherwise everything is constant).
            f.k_sout = ((h >> 23) % 997) as f64 * 1e4;
            fs.push(f);
            samples.push(m.sample(
                SimTime::seconds(start + 5.0),
                EndpointId(1),
                0.0,
                hidden * 3.2e9,
            ));
        }
        let mut cfg = FitConfig::default();
        cfg.gbdt.n_rounds = 80;
        let cmp = compare_with_lmt(&fs, &samples, &cfg, 77).unwrap();
        assert!(
            cmp.augmented.p95 < cmp.baseline.p95 * 0.5,
            "augmented p95 {} vs baseline p95 {}",
            cmp.augmented.p95,
            cmp.baseline.p95
        );
        assert!(cmp.augmented.mdape < 5.0, "augmented MdAPE {}", cmp.augmented.mdape);
    }
}
