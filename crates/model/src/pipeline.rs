//! The shared modeling pipeline: dataset assembly → low-variance pruning →
//! z-score normalization → linear or gradient-boosted regression →
//! evaluation.

use wdt_features::{Dataset, Normalizer, TransferFeatures, FEATURE_NAMES};
use wdt_ml::{
    mdape, pct_error_quantile, r2, rmse, Gbdt, GbdtParams, LinearRegression, NodeArrayForest,
};
use wdt_types::json::{JsonError, JsonValue};

/// Which regression family to fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Ordinary least squares (paper §5.1).
    Linear,
    /// Gradient-boosted trees (paper §5.2).
    Gbdt,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct FitConfig {
    /// Coefficient-of-variation threshold below which a feature is
    /// eliminated (the paper drops C and P this way).
    pub min_cv: f64,
    /// Boosting hyperparameters (ignored for linear models).
    pub gbdt: GbdtParams,
    /// Ridge stabilizer for the linear model.
    pub ridge: f64,
}

impl Default for FitConfig {
    fn default() -> Self {
        FitConfig { min_cv: 1e-3, gbdt: GbdtParams::default(), ridge: 1e-6 }
    }
}

/// Build the model dataset from engineered features.
///
/// `include_nflt` selects between the paper's two uses: `false` for
/// prediction (faults are unknown in advance), `true` for explanation
/// (Figures 9 and 12 include `Nflt`).
pub fn build_dataset(features: &[TransferFeatures], include_nflt: bool) -> Dataset {
    let names: Vec<String> = FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
    let x: Vec<Vec<f64>> = features.iter().map(|f| f.to_vec()).collect();
    let y: Vec<f64> = features.iter().map(|f| f.rate).collect();
    let mut d = Dataset::new(names, x, y);
    if !include_nflt {
        d.drop_column("Nflt");
    }
    d
}

enum Inner {
    Linear(LinearRegression),
    /// The arena-layout model is kept for persistence and importance; all
    /// prediction goes through the flattened node-array layout, which is
    /// bitwise-identical by construction (see `wdt_ml::nodearray`).
    Gbdt {
        model: Box<Gbdt>,
        flat: NodeArrayForest,
    },
}

impl Inner {
    fn gbdt(model: Gbdt) -> Self {
        let flat = NodeArrayForest::from_gbdt(&model);
        Inner::Gbdt { model: Box::new(model), flat }
    }
}

/// A trained pipeline: remembers which columns it kept and how it
/// normalized them, so prediction accepts rows in the *original* layout.
///
/// Serializable: persist with [`FittedModel::to_json`] and reload with
/// [`FittedModel::from_json`] to reuse a model across processes.
pub struct FittedModel {
    kind: ModelKind,
    /// Indices of kept columns in the original dataset layout.
    kept: Vec<usize>,
    /// Names of kept columns.
    names: Vec<String>,
    /// Names of eliminated (low-variance) columns.
    pub eliminated: Vec<String>,
    normalizer: Normalizer,
    inner: Inner,
}

/// Reusable workspace for [`FittedModel::predict_into`]: holds the
/// prepared-row buffers between batches so steady-state prediction
/// allocates nothing. One per caller thread (it is plain data — no
/// locking).
#[derive(Debug, Default)]
pub struct PredictScratch {
    prepared: Vec<Vec<f64>>,
}

impl FittedModel {
    /// Fit on a training dataset. Returns `None` for degenerate inputs
    /// (no rows, or every feature eliminated).
    pub fn fit(train: &Dataset, kind: ModelKind, cfg: &FitConfig) -> Option<Self> {
        if train.is_empty() {
            return None;
        }
        let low = train.low_variance_columns(cfg.min_cv);
        let kept: Vec<usize> = (0..train.width()).filter(|j| !low.contains(j)).collect();
        if kept.is_empty() {
            return None;
        }
        let names: Vec<String> = kept.iter().map(|&j| train.names[j].clone()).collect();
        let eliminated: Vec<String> = low.iter().map(|&j| train.names[j].clone()).collect();
        let x: Vec<Vec<f64>> =
            train.x.iter().map(|row| kept.iter().map(|&j| row[j]).collect()).collect();
        let pruned = Dataset::new(names.clone(), x, train.y.clone());
        let normalizer = Normalizer::fit(&pruned);
        let normed = normalizer.apply(&pruned);
        let inner = match kind {
            ModelKind::Linear => {
                Inner::Linear(LinearRegression::fit(&normed.x, &normed.y, cfg.ridge)?)
            }
            ModelKind::Gbdt => Inner::gbdt(Gbdt::fit(&normed.x, &normed.y, &cfg.gbdt)),
        };
        Some(FittedModel { kind, kept, names, eliminated, normalizer, inner })
    }

    /// The model family.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Names of the features the model actually uses.
    pub fn feature_names(&self) -> &[String] {
        &self.names
    }

    /// Indices of the used features in the *original* (pre-pruning) row
    /// layout, parallel to [`FittedModel::feature_names`]. Serving layers
    /// use this to validate that a loaded artifact is compatible with the
    /// feature schema they build rows in.
    pub fn kept_columns(&self) -> &[usize] {
        &self.kept
    }

    /// Gather kept columns and normalize, producing the row layout the
    /// inner model was fitted on.
    fn prepare_row(&self, row: &[f64]) -> Vec<f64> {
        let mut r: Vec<f64> = self.kept.iter().map(|&j| row[j]).collect();
        self.normalizer.apply_row(&mut r);
        r
    }

    /// Predict rows given in the original (pre-pruning) layout. Boosted
    /// models are block-evaluated over the flattened tree layout; results
    /// are bitwise equal to mapping [`FittedModel::predict_row`].
    pub fn predict(&self, x: &[Vec<f64>]) -> Vec<f64> {
        match &self.inner {
            Inner::Linear(_) => x.iter().map(|row| self.predict_row(row)).collect(),
            Inner::Gbdt { flat, .. } => {
                let prepared: Vec<Vec<f64>> = x.iter().map(|row| self.prepare_row(row)).collect();
                flat.predict(&prepared)
            }
        }
    }

    /// Allocation-free batch prediction for serving hot paths: like
    /// [`FittedModel::predict`], but writes rates into `out` and reuses
    /// `scratch` for the prepared (pruned + normalized) rows, so a
    /// warmed-up caller predicts whole batches without touching the
    /// allocator. Results are bitwise equal to [`FittedModel::predict`]:
    /// row preparation runs the same gather + normalize, and boosted
    /// models go through the same serial block kernel
    /// (`NodeArrayForest::predict_into`) that `predict` uses for
    /// sub-parallel-threshold batches like serving micro-batches.
    pub fn predict_into(&self, x: &[Vec<f64>], out: &mut Vec<f64>, scratch: &mut PredictScratch) {
        out.clear();
        out.resize(x.len(), 0.0);
        while scratch.prepared.len() < x.len() {
            scratch.prepared.push(Vec::new());
        }
        for (row, prep) in x.iter().zip(scratch.prepared.iter_mut()) {
            prep.clear();
            prep.extend(self.kept.iter().map(|&j| row[j]));
            self.normalizer.apply_row(prep);
        }
        let prepared = &scratch.prepared[..x.len()];
        match &self.inner {
            Inner::Linear(m) => {
                for (prep, o) in prepared.iter().zip(out.iter_mut()) {
                    *o = m.predict_one(prep);
                }
            }
            Inner::Gbdt { flat, .. } => flat.predict_into(prepared, out),
        }
    }

    /// Per-feature attribution for one row in the original layout,
    /// allocation-free once warmed: `contribs` is resized to the kept
    /// width (parallel to [`FittedModel::feature_names`]) and `scratch`
    /// holds the prepared row. On return,
    ///
    /// ```text
    /// bias + contribs[0] + … + contribs[k-1] == prediction   (bitwise)
    /// ```
    ///
    /// folded left-to-right, where `prediction` is bitwise equal to
    /// [`FittedModel::predict_row`]. Boosted models attribute via Saabas
    /// path deltas on the flattened forest; linear models attribute
    /// `βⱼ·xⱼ` (normalized space) per feature with the intercept as bias.
    /// Both reconcile the few-ulp fold residual into the last slot
    /// (`wdt_ml::exact_reconcile`). Attributions are in the normalized
    /// feature space, which shares names with the original space.
    /// Returns `(bias, prediction)`.
    pub fn explain_row_into(
        &self,
        row: &[f64],
        contribs: &mut Vec<f64>,
        scratch: &mut PredictScratch,
    ) -> (f64, f64) {
        if scratch.prepared.is_empty() {
            scratch.prepared.push(Vec::new());
        }
        let prep = &mut scratch.prepared[0];
        prep.clear();
        prep.extend(self.kept.iter().map(|&j| row[j]));
        self.normalizer.apply_row(prep);
        contribs.clear();
        contribs.resize(self.kept.len(), 0.0);
        match &self.inner {
            Inner::Linear(m) => {
                let prediction = m.predict_one(prep);
                for ((c, b), x) in contribs.iter_mut().zip(&m.coefficients).zip(prep.iter()) {
                    *c = b * x;
                }
                let bias = wdt_ml::exact_reconcile(m.intercept, prediction, contribs, true);
                (bias, prediction)
            }
            Inner::Gbdt { flat, .. } => flat.explain_into(prep, contribs),
        }
    }

    /// Convenience attribution for one row: allocates fresh buffers and
    /// returns `(bias, prediction, contributions)`; see
    /// [`FittedModel::explain_row_into`] for the invariants.
    pub fn explain_row(&self, row: &[f64]) -> (f64, f64, Vec<f64>) {
        let mut contribs = Vec::new();
        let mut scratch = PredictScratch::default();
        let (bias, prediction) = self.explain_row_into(row, &mut contribs, &mut scratch);
        (bias, prediction, contribs)
    }

    /// Predict one row in the original layout.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let r = self.prepare_row(row);
        match &self.inner {
            Inner::Linear(m) => m.predict_one(&r),
            Inner::Gbdt { flat, .. } => flat.predict_row(&r),
        }
    }

    /// Per-feature significance over kept features: |coefficient| for
    /// linear models (Figure 9), gain importance for boosted models
    /// (Figure 12) — both scaled so the maximum is 1.
    pub fn significance(&self) -> Vec<(String, f64)> {
        let raw = match &self.inner {
            Inner::Linear(m) => m.relative_significance(),
            Inner::Gbdt { model, .. } => model.feature_importance(),
        };
        self.names.iter().cloned().zip(raw).collect()
    }

    /// Serialize the fitted model to JSON for persistence.
    pub fn to_json(&self) -> String {
        let (family, inner) = match &self.inner {
            Inner::Linear(m) => ("linear", m.to_json_value()),
            Inner::Gbdt { model, .. } => ("gbdt", model.to_json_value()),
        };
        JsonValue::obj([
            ("kind", JsonValue::Str(family.to_string())),
            ("kept", JsonValue::Arr(self.kept.iter().map(|&j| JsonValue::Num(j as f64)).collect())),
            (
                "names",
                JsonValue::Arr(self.names.iter().map(|n| JsonValue::Str(n.clone())).collect()),
            ),
            (
                "eliminated",
                JsonValue::Arr(self.eliminated.iter().map(|n| JsonValue::Str(n.clone())).collect()),
            ),
            (
                "normalizer",
                JsonValue::obj([
                    ("mean", JsonValue::nums(&self.normalizer.mean)),
                    ("std", JsonValue::nums(&self.normalizer.std)),
                ]),
            ),
            ("model", inner),
        ])
        .to_string()
    }

    /// Reload a model persisted with [`FittedModel::to_json`].
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        let v = JsonValue::parse(json)?;
        let model = v.field("model")?;
        let (kind, inner) = match v.field("kind")?.as_str()? {
            "linear" => {
                (ModelKind::Linear, Inner::Linear(LinearRegression::from_json_value(model)?))
            }
            "gbdt" => (ModelKind::Gbdt, Inner::gbdt(Gbdt::from_json_value(model)?)),
            other => return Err(JsonError::new(format!("unknown model kind '{other}'"))),
        };
        let normalizer = v.field("normalizer")?;
        let normalizer = Normalizer {
            mean: normalizer.field("mean")?.as_f64_vec()?,
            std: normalizer.field("std")?.as_f64_vec()?,
        };
        let kept = v.field("kept")?.as_usize_vec()?;
        let names = v.field("names")?.as_string_vec()?;
        if kept.len() != names.len() || normalizer.mean.len() != names.len() {
            return Err(JsonError::new("inconsistent model artifact"));
        }
        Ok(FittedModel {
            kind,
            kept,
            names,
            eliminated: v.field("eliminated")?.as_string_vec()?,
            normalizer,
            inner,
        })
    }

    /// Evaluate on a test dataset (original layout).
    pub fn evaluate(&self, test: &Dataset) -> EvalReport {
        let pred = self.predict(&test.x);
        EvalReport {
            n: test.len(),
            mdape: mdape(&pred, &test.y),
            p95: pct_error_quantile(&pred, &test.y, 0.95),
            rmse: rmse(&pred, &test.y),
            r2: r2(&pred, &test.y),
            abs_pct_errors: wdt_ml::abs_pct_errors(&pred, &test.y),
        }
    }
}

/// Evaluation results on held-out data.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Test-set size.
    pub n: usize,
    /// Median absolute percentage error (%).
    pub mdape: f64,
    /// 95th-percentile absolute percentage error (%).
    pub p95: f64,
    /// Root-mean-square error (bytes/s).
    pub rmse: f64,
    /// Coefficient of determination.
    pub r2: f64,
    /// The raw per-transfer absolute percentage errors (violin material).
    pub abs_pct_errors: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic dataset with a nonlinear target, a linear feature, a
    /// constant column, and a noise column.
    fn synth(n: usize) -> Dataset {
        let names = vec!["lin".into(), "sq".into(), "const".into(), "noise".into()];
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = (i % 23) as f64;
            let b = (i % 11) as f64 - 5.0;
            let noise = ((i * 2654435761) % 97) as f64 / 97.0;
            x.push(vec![a, b, 7.0, noise]);
            y.push(3.0 * a + 10.0 * b * b + noise);
        }
        Dataset::new(names, x, y)
    }

    #[test]
    fn eliminates_constant_column() {
        let d = synth(300);
        let m = FittedModel::fit(&d, ModelKind::Linear, &FitConfig::default()).unwrap();
        assert_eq!(m.eliminated, vec!["const".to_string()]);
        assert_eq!(m.feature_names().len(), 3);
    }

    #[test]
    fn gbdt_beats_linear_on_nonlinear_target() {
        let d = synth(600);
        let (train, test) = d.split(0.7, 1);
        let cfg = FitConfig::default();
        let lr = FittedModel::fit(&train, ModelKind::Linear, &cfg).unwrap();
        let xgb = FittedModel::fit(&train, ModelKind::Gbdt, &cfg).unwrap();
        let lr_eval = lr.evaluate(&test);
        let xgb_eval = xgb.evaluate(&test);
        assert!(xgb_eval.mdape < lr_eval.mdape, "GBDT {} vs LR {}", xgb_eval.mdape, lr_eval.mdape);
        assert!(xgb_eval.r2 > 0.95, "GBDT R² {}", xgb_eval.r2);
    }

    #[test]
    fn predict_accepts_original_layout() {
        let d = synth(200);
        let m = FittedModel::fit(&d, ModelKind::Gbdt, &FitConfig::default()).unwrap();
        // Row with the constant column still present.
        let p = m.predict_row(&[5.0, 2.0, 7.0, 0.3]);
        assert!(p.is_finite());
    }

    #[test]
    fn batch_predict_is_bitwise_equal_to_row_at_a_time() {
        let d = synth(400);
        for kind in [ModelKind::Linear, ModelKind::Gbdt] {
            let m = FittedModel::fit(&d, kind, &FitConfig::default()).unwrap();
            let batch = m.predict(&d.x);
            for (row, b) in d.x.iter().zip(&batch) {
                assert_eq!(m.predict_row(row).to_bits(), b.to_bits(), "{kind:?}");
            }
        }
    }

    #[test]
    fn predict_into_is_bitwise_equal_and_reuses_scratch() {
        let d = synth(300);
        for kind in [ModelKind::Linear, ModelKind::Gbdt] {
            let m = FittedModel::fit(&d, kind, &FitConfig::default()).unwrap();
            let mut out = Vec::new();
            let mut scratch = PredictScratch::default();
            // Varying batch sizes through ONE scratch, including shrinks.
            for len in [64usize, 300, 1, 17] {
                let batch = &d.x[..len];
                m.predict_into(batch, &mut out, &mut scratch);
                let want = m.predict(batch);
                assert_eq!(out.len(), want.len());
                for (a, b) in out.iter().zip(&want) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{kind:?} len {len}");
                }
            }
        }
    }

    #[test]
    fn explain_row_reconstructs_prediction_bitwise_for_both_kinds() {
        let d = synth(300);
        for kind in [ModelKind::Linear, ModelKind::Gbdt] {
            let m = FittedModel::fit(&d, kind, &FitConfig::default()).unwrap();
            let mut contribs = Vec::new();
            let mut scratch = PredictScratch::default();
            for row in &d.x {
                let (bias, pred) = m.explain_row_into(row, &mut contribs, &mut scratch);
                assert_eq!(contribs.len(), m.feature_names().len(), "{kind:?}");
                assert_eq!(pred.to_bits(), m.predict_row(row).to_bits(), "{kind:?}");
                let folded = contribs.iter().fold(bias, |a, &c| a + c);
                assert_eq!(folded.to_bits(), pred.to_bits(), "{kind:?} row {row:?}");
            }
            // The convenience form agrees with the _into form.
            let (b2, p2, c2) = m.explain_row(&d.x[0]);
            let (b1, p1) = m.explain_row_into(&d.x[0], &mut contribs, &mut scratch);
            assert_eq!((b1.to_bits(), p1.to_bits()), (b2.to_bits(), p2.to_bits()));
            assert_eq!(contribs, c2);
        }
    }

    #[test]
    fn explain_survives_model_persistence() {
        let d = synth(250);
        let m = FittedModel::fit(&d, ModelKind::Gbdt, &FitConfig::default()).unwrap();
        let back = FittedModel::from_json(&m.to_json()).unwrap();
        for row in d.x.iter().take(40) {
            let (b1, p1, c1) = m.explain_row(row);
            let (b2, p2, c2) = back.explain_row(row);
            assert_eq!((b1.to_bits(), p1.to_bits()), (b2.to_bits(), p2.to_bits()));
            assert_eq!(c1, c2);
        }
    }

    #[test]
    fn significance_covers_kept_features() {
        let d = synth(300);
        let m = FittedModel::fit(&d, ModelKind::Gbdt, &FitConfig::default()).unwrap();
        let sig = m.significance();
        assert_eq!(sig.len(), 3);
        let max = sig.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
        assert_eq!(max, 1.0);
        // The squared feature dominates the target → top importance.
        let top = sig.iter().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
        assert_eq!(top.0, "sq");
    }

    #[test]
    fn empty_dataset_returns_none() {
        let d = Dataset::new(vec!["a".into()], vec![], vec![]);
        assert!(FittedModel::fit(&d, ModelKind::Linear, &FitConfig::default()).is_none());
    }

    #[test]
    fn build_dataset_respects_nflt_flag() {
        use wdt_types::{EdgeId, EndpointId, TransferId};
        let f = TransferFeatures {
            id: TransferId(0),
            edge: EdgeId::new(EndpointId(0), EndpointId(1)),
            start: 0.0,
            end: 1.0,
            rate: 5.0,
            k_sout: 1.0,
            k_din: 2.0,
            c: 4.0,
            p: 2.0,
            s_sout: 0.0,
            s_sin: 0.0,
            s_dout: 0.0,
            s_din: 0.0,
            k_sin: 0.0,
            k_dout: 0.0,
            n_d: 1.0,
            n_b: 10.0,
            n_flt: 3.0,
            g_src: 0.0,
            g_dst: 0.0,
            n_f: 2.0,
        };
        let with = build_dataset(std::slice::from_ref(&f), true);
        let without = build_dataset(&[f], false);
        assert_eq!(with.width(), 16);
        assert_eq!(without.width(), 15);
        assert!(!without.names.iter().any(|n| n == "Nflt"));
        assert_eq!(with.y, vec![5.0]);
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;

    #[test]
    fn models_round_trip_through_json() {
        let names = vec!["a".into(), "b".into()];
        let x: Vec<Vec<f64>> = (0..200).map(|i| vec![(i % 13) as f64, (i % 7) as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * r[0] + 2.0 * r[1]).collect();
        let data = Dataset::new(names, x.clone(), y);
        for kind in [ModelKind::Linear, ModelKind::Gbdt] {
            let m = FittedModel::fit(&data, kind, &FitConfig::default()).expect("fit");
            let json = m.to_json();
            let back = FittedModel::from_json(&json).expect("parse");
            for row in x.iter().take(20) {
                assert_eq!(m.predict_row(row), back.predict_row(row), "{kind:?}");
            }
            assert_eq!(m.feature_names(), back.feature_names());
        }
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(FittedModel::from_json("not json").is_err());
        assert!(FittedModel::from_json("{}").is_err());
    }

    /// `unwrap_err` needs `Debug` on the success type; avoid requiring it.
    fn expect_err(r: Result<FittedModel, JsonError>, ctx: &str) -> JsonError {
        match r {
            Err(e) => e,
            Ok(_) => panic!("{ctx}: expected an error, got a model"),
        }
    }

    fn small_artifact(kind: ModelKind) -> String {
        let names = vec!["a".into(), "b".into()];
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![(i % 13) as f64, (i % 7) as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] + 2.0 * r[1]).collect();
        let data = Dataset::new(names, x, y);
        FittedModel::fit(&data, kind, &FitConfig::default()).expect("fit").to_json()
    }

    /// A registry must never load half an artifact: every truncation of a
    /// valid artifact fails cleanly instead of panicking or "succeeding".
    #[test]
    fn from_json_rejects_truncated_artifacts() {
        for kind in [ModelKind::Linear, ModelKind::Gbdt] {
            let json = small_artifact(kind);
            for frac in [0.1, 0.5, 0.9, 0.99] {
                let mut cut = (json.len() as f64 * frac) as usize;
                while !json.is_char_boundary(cut) {
                    cut -= 1;
                }
                assert!(
                    FittedModel::from_json(&json[..cut]).is_err(),
                    "{kind:?} artifact truncated to {cut}/{} bytes parsed",
                    json.len()
                );
            }
        }
    }

    #[test]
    fn from_json_rejects_wrong_kind() {
        let swapped =
            small_artifact(ModelKind::Gbdt).replace("\"kind\":\"gbdt\"", "\"kind\":\"forest\"");
        let err = expect_err(FittedModel::from_json(&swapped), "swapped kind");
        assert!(err.to_string().contains("unknown model kind"), "{err}");
        // Mismatched kind/payload: a gbdt payload labeled linear must fail
        // on the payload fields, not crash.
        let mislabeled =
            small_artifact(ModelKind::Gbdt).replace("\"kind\":\"gbdt\"", "\"kind\":\"linear\"");
        assert!(FittedModel::from_json(&mislabeled).is_err());
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        let json = small_artifact(ModelKind::Linear);
        let full = wdt_types::json::JsonValue::parse(&json).unwrap();
        let obj = match &full {
            wdt_types::json::JsonValue::Obj(m) => m.clone(),
            _ => unreachable!("artifact is an object"),
        };
        for missing in obj.keys() {
            let mut pruned = obj.clone();
            pruned.remove(missing);
            let text = wdt_types::json::JsonValue::Obj(pruned).to_string();
            let err = expect_err(FittedModel::from_json(&text), missing);
            assert!(
                err.to_string().contains("missing field")
                    || err.to_string().contains("inconsistent"),
                "dropping '{missing}': unexpected error {err}"
            );
        }
    }

    #[test]
    fn from_json_rejects_inconsistent_shapes() {
        // Normalizer length disagreeing with names must be caught before
        // prediction can index out of bounds.
        let json = small_artifact(ModelKind::Linear);
        let broken = json.replace("\"names\":[\"a\",\"b\"]", "\"names\":[\"a\"]");
        assert_ne!(json, broken, "test fixture drifted: names not found");
        assert!(FittedModel::from_json(&broken).is_err());
    }
}
