//! One model for all edges (paper §5.4, Eq. 5).
//!
//! Pool the transfers of every modeled edge, add the two endpoint
//! capability features (`ROmax` of the source, `RImax` of the destination,
//! both estimated from the log), and fit a single linear or boosted model.
//! The paper reports MdAPE 19% (linear) and 4.9% (boosted) — worse than
//! per-edge linear models but usable for edges with little history.

use crate::pipeline::{EvalReport, FitConfig, FittedModel, ModelKind};
use std::collections::BTreeMap;
use wdt_features::{
    endpoint_caps, extend_with_caps, extended_feature_names, Dataset, EndpointCaps,
    TransferFeatures,
};
use wdt_types::EndpointId;

/// A fitted global (all-edges) rate model.
pub struct GlobalModel {
    model: FittedModel,
    caps: BTreeMap<EndpointId, EndpointCaps>,
    include_nflt: bool,
}

/// Build the Eq. 5 dataset: Table 2 features extended with `ROmax_src` and
/// `RImax_dst`, using capability estimates from `caps`.
pub fn build_global_dataset(
    features: &[TransferFeatures],
    caps: &BTreeMap<EndpointId, EndpointCaps>,
    include_nflt: bool,
) -> Dataset {
    let names: Vec<String> = extended_feature_names().iter().map(|s| s.to_string()).collect();
    let x: Vec<Vec<f64>> = features.iter().map(|f| extend_with_caps(f, caps)).collect();
    let y: Vec<f64> = features.iter().map(|f| f.rate).collect();
    let mut d = Dataset::new(names, x, y);
    if !include_nflt {
        d.drop_column("Nflt");
    }
    d
}

impl GlobalModel {
    /// Fit on pooled (already threshold-filtered) transfers. Capability
    /// features are estimated from the same training pool.
    pub fn fit(
        train_features: &[TransferFeatures],
        kind: ModelKind,
        cfg: &FitConfig,
    ) -> Option<Self> {
        let caps = endpoint_caps(train_features);
        let data = build_global_dataset(train_features, &caps, false);
        let model = FittedModel::fit(&data, kind, cfg)?;
        Some(GlobalModel { model, caps, include_nflt: false })
    }

    /// Predict the rate of one transfer (bytes/s) from its features,
    /// including for edges the model never saw (that is the point of §5.4 —
    /// only the *endpoints* need history).
    pub fn predict_one(&self, f: &TransferFeatures) -> f64 {
        let mut row = extend_with_caps(f, &self.caps);
        if !self.include_nflt {
            row.remove(wdt_features::NFLT_INDEX);
        }
        self.model.predict_row(&row)
    }

    /// Evaluate on held-out transfers.
    pub fn evaluate(&self, test_features: &[TransferFeatures]) -> EvalReport {
        let data = build_global_dataset(test_features, &self.caps, self.include_nflt);
        self.model.evaluate(&data)
    }

    /// The endpoint capability table the model learned.
    pub fn capabilities(&self) -> &BTreeMap<EndpointId, EndpointCaps> {
        &self.caps
    }

    /// Feature significance of the underlying pipeline.
    pub fn significance(&self) -> Vec<(String, f64)> {
        self.model.significance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdt_types::{EdgeId, TransferId};

    /// Edges with different capability scales; rate depends on capability
    /// and load nonlinearly.
    fn synth(n_per_edge: usize) -> Vec<TransferFeatures> {
        let mut out = Vec::new();
        let mut id = 0u64;
        for (src, dst, cap) in [(0u32, 1u32, 1.0e9), (2, 3, 3.0e8), (4, 5, 6.0e8), (0, 3, 8.0e8)] {
            for i in 0..n_per_edge {
                let h = (id + 1).wrapping_mul(0x9E3779B97F4A7C15);
                let u = |k: u64| (((h >> (k % 37)) % 1000) as f64) / 1000.0;
                let k_sout = cap * 0.8 * u(5);
                let k_din = cap * 0.8 * u(9);
                let rate =
                    cap / (1.0 + (k_sout + k_din) / (0.5 * cap)) * (1.0 + 0.04 * (u(13) - 0.5));
                out.push(TransferFeatures {
                    id: TransferId(id),
                    edge: EdgeId::new(EndpointId(src), EndpointId(dst)),
                    start: i as f64,
                    end: i as f64 + 50.0,
                    rate,
                    k_sout,
                    k_din,
                    c: 4.0,
                    p: 2.0,
                    s_sout: 0.0,
                    s_sin: 0.0,
                    s_dout: 0.0,
                    s_din: 0.0,
                    k_sin: 0.0,
                    k_dout: 0.0,
                    n_d: 1.0,
                    n_b: 1e9,
                    n_flt: 0.0,
                    g_src: 0.0,
                    g_dst: 0.0,
                    n_f: 10.0,
                });
                id += 1;
            }
        }
        out
    }

    fn quick_cfg() -> FitConfig {
        let mut cfg = FitConfig::default();
        cfg.gbdt.n_rounds = 80;
        cfg
    }

    #[test]
    fn global_gbdt_predicts_across_edges() {
        let all = synth(300);
        let (train, test): (Vec<_>, Vec<_>) =
            all.iter().cloned().enumerate().partition(|(i, _)| i % 10 < 7);
        let train: Vec<TransferFeatures> = train.into_iter().map(|(_, f)| f).collect();
        let test: Vec<TransferFeatures> = test.into_iter().map(|(_, f)| f).collect();
        let m = GlobalModel::fit(&train, ModelKind::Gbdt, &quick_cfg()).unwrap();
        let eval = m.evaluate(&test);
        assert!(eval.mdape < 15.0, "global GBDT MdAPE {}", eval.mdape);
    }

    #[test]
    fn gbdt_beats_linear_globally() {
        let all = synth(250);
        let (train, test): (Vec<_>, Vec<_>) =
            all.iter().cloned().enumerate().partition(|(i, _)| i % 10 < 7);
        let train: Vec<TransferFeatures> = train.into_iter().map(|(_, f)| f).collect();
        let test: Vec<TransferFeatures> = test.into_iter().map(|(_, f)| f).collect();
        let cfg = quick_cfg();
        let lr = GlobalModel::fit(&train, ModelKind::Linear, &cfg).unwrap().evaluate(&test);
        let xgb = GlobalModel::fit(&train, ModelKind::Gbdt, &cfg).unwrap().evaluate(&test);
        assert!(xgb.mdape < lr.mdape, "xgb {} vs lr {}", xgb.mdape, lr.mdape);
    }

    #[test]
    fn capability_features_capture_endpoint_scale() {
        let all = synth(200);
        let m = GlobalModel::fit(&all, ModelKind::Gbdt, &quick_cfg()).unwrap();
        let caps = m.capabilities();
        // Endpoint 0 fronts the 1.0e9 edge; endpoint 2 the 3.0e8 edge.
        assert!(caps[&EndpointId(0)].ro_max > caps[&EndpointId(2)].ro_max);
    }

    #[test]
    fn predicts_unseen_edge_between_seen_endpoints() {
        let all = synth(200);
        let m = GlobalModel::fit(&all, ModelKind::Gbdt, &quick_cfg()).unwrap();
        // Fabricate a transfer on the never-seen edge 2 → 1.
        let mut f = all[0].clone();
        f.edge = EdgeId::new(EndpointId(2), EndpointId(1));
        f.k_sout = 0.0;
        f.k_din = 0.0;
        let pred = m.predict_one(&f);
        assert!(pred.is_finite() && pred > 0.0);
    }
}
