//! # wdt-model — transfer-rate models (the paper's contribution)
//!
//! Everything HPDC'17's "Explaining Wide Area Data Transfer Performance"
//! proposes, as a public API over the `wdt-features` / `wdt-ml` substrates:
//!
//! * [`analytical`] — the Eq. 1 upper bound `Rmax ≤ min(DRmax, MMmax,
//!   DWmax)`, its historical estimation, and the §3.2 validation verdicts;
//! * [`pipeline`] — the shared train/evaluate pipeline (low-variance
//!   pruning, z-score normalization, linear or gradient-boosted fit);
//! * [`per_edge`] — one model per heavy edge (§5.1–5.3, Figures 9–12);
//! * [`global_model`] — one model for all edges via endpoint capability
//!   features (§5.4, Eq. 5);
//! * [`lmt_model`] — the storage-monitoring augmentation (§5.5.2).

pub mod advisor;
pub mod analytical;
pub mod global_model;
pub mod lmt_model;
pub mod per_edge;
pub mod pipeline;
pub mod tune;

pub use advisor::{
    recommend_endpoint_concurrency, schedule_advice, ConcurrencyAdvice, ScheduleAdvice,
};
pub use analytical::{
    classify_edges, historical_disk_ceilings, validate_bound, BoundVerdict, Limiter,
    SubsystemCeilings,
};
pub use global_model::{build_global_dataset, GlobalModel};
pub use lmt_model::{
    build_lmt_dataset, compare_with_lmt, join_storage_load, LmtComparison, StorageLoad,
};
pub use per_edge::{run_one_edge, run_per_edge, EdgeExperiment, PerEdgeConfig};
pub use pipeline::{build_dataset, EvalReport, FitConfig, FittedModel, ModelKind, PredictScratch};
pub use tune::{default_grid, tune_gbdt, TuneResult};
