//! Dataset sampling: what a transfer moves.
//!
//! The paper's Figure 6 shows transfer sizes from one byte to near a
//! petabyte and rates across seven orders of magnitude. We sample total
//! size from a wide log-normal, an average file size from a second
//! log-normal (bounded by the total), and a directory branching factor —
//! giving the heavy-tailed joint distribution of (`Nb`, `Nf`, `Nd`) the
//! feature analysis needs.

use rand::Rng;
use rand_distr::{Distribution, LogNormal};
use wdt_types::Bytes;

/// A sampled dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dataset {
    /// Total bytes.
    pub bytes: Bytes,
    /// File count.
    pub files: u64,
    /// Directory count.
    pub dirs: u64,
}

/// Sampler for transfer datasets.
#[derive(Debug, Clone)]
pub struct DatasetSampler {
    /// ln-space mean of the total-size distribution (bytes).
    total: LogNormal<f64>,
    /// ln-space mean of the average-file-size distribution (bytes).
    file: LogNormal<f64>,
    /// ln-space distribution of files-per-directory.
    per_dir: LogNormal<f64>,
    /// Hard cap on total size, so one pathological draw cannot dominate a
    /// simulation (the full Globus log's ~1 PB outliers are out of scope
    /// for a single run's wall-clock).
    max_bytes: f64,
}

impl DatasetSampler {
    /// Production-like distribution: median transfer ≈ 2 GB with a long
    /// tail, median file ≈ 30 MB.
    pub fn production() -> Self {
        DatasetSampler {
            total: LogNormal::new((2.0e9f64).ln(), 2.6).expect("valid"),
            file: LogNormal::new((30.0e6f64).ln(), 2.2).expect("valid"),
            per_dir: LogNormal::new(30.0f64.ln(), 1.2).expect("valid"),
            max_bytes: 4.0e12, // 4 TB
        }
    }

    /// Bulk-science distribution for heavy edges: bigger datasets.
    pub fn heavy_edge() -> Self {
        DatasetSampler {
            total: LogNormal::new((20.0e9f64).ln(), 1.5).expect("valid"),
            file: LogNormal::new((100.0e6f64).ln(), 2.0).expect("valid"),
            per_dir: LogNormal::new(50.0f64.ln(), 1.0).expect("valid"),
            max_bytes: 1.0e13, // 10 TB
        }
    }

    /// Draw one dataset.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Dataset {
        let bytes = self.total.sample(rng).clamp(1.0, self.max_bytes);
        let avg_file = self.file.sample(rng).clamp(1.0, bytes);
        let files = (bytes / avg_file).round().clamp(1.0, 2.0e6) as u64;
        let fpd = self.per_dir.sample(rng).max(1.0);
        let dirs = ((files as f64 / fpd).ceil() as u64).max(1);
        Dataset { bytes: Bytes::new(bytes), files, dirs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn draws(n: usize, sampler: &DatasetSampler) -> Vec<Dataset> {
        let mut rng = StdRng::seed_from_u64(42);
        (0..n).map(|_| sampler.sample(&mut rng)).collect()
    }

    #[test]
    fn invariants_hold() {
        for d in draws(5000, &DatasetSampler::production()) {
            assert!(d.bytes.as_f64() >= 1.0);
            assert!(d.files >= 1);
            assert!(d.dirs >= 1);
            assert!(d.dirs <= d.files, "dirs {} > files {}", d.dirs, d.files);
            assert!(d.bytes.as_f64() <= 4.0e12);
        }
    }

    #[test]
    fn production_median_near_target() {
        let mut sizes: Vec<f64> =
            draws(4000, &DatasetSampler::production()).iter().map(|d| d.bytes.as_f64()).collect();
        sizes.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = sizes[sizes.len() / 2];
        assert!((0.5e9..8.0e9).contains(&median), "median {median}");
    }

    #[test]
    fn distribution_spans_many_orders_of_magnitude() {
        let sizes: Vec<f64> =
            draws(5000, &DatasetSampler::production()).iter().map(|d| d.bytes.as_f64()).collect();
        let min = sizes.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = sizes.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 1e6, "span {:.1e}..{:.1e}", min, max);
    }

    #[test]
    fn heavy_edges_are_bigger_on_average() {
        let p: f64 = draws(3000, &DatasetSampler::production())
            .iter()
            .map(|d| d.bytes.as_f64().ln())
            .sum::<f64>()
            / 3000.0;
        let h: f64 = draws(3000, &DatasetSampler::heavy_edge())
            .iter()
            .map(|d| d.bytes.as_f64().ln())
            .sum::<f64>()
            / 3000.0;
        assert!(h > p, "heavy {h} vs production {p} (ln-mean)");
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let s = DatasetSampler::production();
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        }
    }
}
