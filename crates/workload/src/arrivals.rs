//! Session-based arrival processes.
//!
//! Real transfer activity is bursty: a user (or a workflow engine) submits
//! a *session* of several transfers close together, sessions arrive with a
//! diurnal rhythm. Burstiness matters here because it is what creates
//! overlapping transfers — the competing load whose features the paper's
//! models learn from. A plain Poisson process at the same mean rate would
//! produce far fewer overlaps.

use rand::Rng;
use rand_distr::{Distribution, Exp, LogNormal};
use wdt_types::SimTime;

/// Generator of session-clustered arrival times over a horizon.
#[derive(Debug, Clone)]
pub struct SessionArrivals {
    /// Mean sessions per day (before diurnal modulation).
    pub sessions_per_day: f64,
    /// Mean transfers per session.
    pub mean_session_len: f64,
    /// Mean gap between transfers inside a session, seconds.
    pub intra_session_gap_s: f64,
    /// Diurnal modulation depth in [0, 1): 0 = flat, 0.6 = strong
    /// day/night swing.
    pub diurnal_depth: f64,
}

impl Default for SessionArrivals {
    fn default() -> Self {
        SessionArrivals {
            sessions_per_day: 8.0,
            mean_session_len: 4.0,
            intra_session_gap_s: 180.0,
            diurnal_depth: 0.5,
        }
    }
}

impl SessionArrivals {
    /// Sinusoidal diurnal intensity multiplier at time `t` (period 24 h,
    /// peak mid-day).
    fn diurnal(&self, t: f64) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * (t / 86_400.0);
        1.0 - self.diurnal_depth * phase.cos()
    }

    /// Generate arrival times over `[0, horizon]`, sorted ascending.
    ///
    /// Session starts follow an inhomogeneous Poisson process (thinning);
    /// each session emits a geometric-ish number of transfers with
    /// log-normal intra-session gaps.
    pub fn generate<R: Rng>(&self, horizon: SimTime, rng: &mut R) -> Vec<SimTime> {
        let lambda_max = self.sessions_per_day * (1.0 + self.diurnal_depth) / 86_400.0;
        if lambda_max <= 0.0 {
            return Vec::new();
        }
        let exp = Exp::new(lambda_max).expect("positive rate");
        let gap = LogNormal::new(self.intra_session_gap_s.ln(), 0.8).expect("valid lognormal");
        let mut out = Vec::new();
        let mut t = 0.0;
        loop {
            t += exp.sample(rng);
            if t > horizon.as_secs() {
                break;
            }
            // Thinning for the diurnal rhythm.
            let lambda_t = self.sessions_per_day * self.diurnal(t) / 86_400.0;
            if rng.gen_range(0.0..1.0) >= lambda_t / lambda_max {
                continue;
            }
            // Session length ≥ 1, geometric with the requested mean.
            let p = 1.0 / self.mean_session_len.max(1.0);
            let mut len = 1usize;
            while rng.gen_range(0.0..1.0) > p && len < 64 {
                len += 1;
            }
            let mut s = t;
            for _ in 0..len {
                if s <= horizon.as_secs() {
                    out.push(SimTime::seconds(s));
                }
                s += gap.sample(rng);
            }
        }
        out.sort();
        out
    }
}

/// One flash-crowd burst window: session intensity is multiplied by
/// `multiplier` over `[start_s, start_s + dur_s)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// Burst start, seconds from run start.
    pub start_s: f64,
    /// Burst duration, seconds.
    pub dur_s: f64,
    /// Intensity multiplier (≥ 1) while active.
    pub multiplier: f64,
}

/// A flash-crowd arrival process: the diurnal session process of `base`
/// with burst windows multiplying the instantaneous session intensity —
/// the "everyone pulls the new dataset at once" regime.
#[derive(Debug, Clone)]
pub struct FlashCrowdArrivals {
    /// The base session process (diurnal or flat).
    pub base: SessionArrivals,
    /// Burst windows. May overlap; overlapping multipliers compound.
    pub bursts: Vec<Burst>,
}

impl FlashCrowdArrivals {
    /// Combined burst multiplier at time `t`.
    fn burst_mult(&self, t: f64) -> f64 {
        let mut m = 1.0;
        for b in &self.bursts {
            if b.start_s <= t && t < b.start_s + b.dur_s {
                m *= b.multiplier;
            }
        }
        m
    }

    /// Generate arrival times over `[0, horizon]`, sorted ascending.
    ///
    /// Same thinning construction as [`SessionArrivals::generate`], with
    /// the envelope raised to the worst-case product of burst multipliers
    /// so the thinned process stays exact (never clipped) inside bursts.
    pub fn generate<R: Rng>(&self, horizon: SimTime, rng: &mut R) -> Vec<SimTime> {
        let peak_mult: f64 = self.bursts.iter().map(|b| b.multiplier.max(1.0)).product();
        let lambda_max =
            self.base.sessions_per_day * (1.0 + self.base.diurnal_depth) * peak_mult / 86_400.0;
        if lambda_max <= 0.0 {
            return Vec::new();
        }
        let exp = Exp::new(lambda_max).expect("positive rate");
        let gap = LogNormal::new(self.base.intra_session_gap_s.ln(), 0.8).expect("valid lognormal");
        let mut out = Vec::new();
        let mut t = 0.0;
        loop {
            t += exp.sample(rng);
            if t > horizon.as_secs() {
                break;
            }
            let lambda_t =
                self.base.sessions_per_day * self.base.diurnal(t) * self.burst_mult(t) / 86_400.0;
            if rng.gen_range(0.0..1.0) >= lambda_t / lambda_max {
                continue;
            }
            let p = 1.0 / self.base.mean_session_len.max(1.0);
            let mut len = 1usize;
            while rng.gen_range(0.0..1.0) > p && len < 64 {
                len += 1;
            }
            let mut s = t;
            for _ in 0..len {
                if s <= horizon.as_secs() {
                    out.push(SimTime::seconds(s));
                }
                s += gap.sample(rng);
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn arrivals_sorted_and_within_horizon() {
        let mut rng = StdRng::seed_from_u64(1);
        let horizon = SimTime::days(10.0);
        let a = SessionArrivals::default().generate(horizon, &mut rng);
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(a.iter().all(|t| *t <= horizon));
    }

    #[test]
    fn mean_rate_roughly_matches_spec() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec =
            SessionArrivals { sessions_per_day: 10.0, mean_session_len: 3.0, ..Default::default() };
        let days = 60.0;
        let a = spec.generate(SimTime::days(days), &mut rng);
        let per_day = a.len() as f64 / days;
        // ~30 transfers/day expected.
        assert!((15.0..50.0).contains(&per_day), "got {per_day}/day");
    }

    #[test]
    fn burstiness_creates_short_gaps() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = SessionArrivals::default().generate(SimTime::days(30.0), &mut rng);
        let short_gaps = a.windows(2).filter(|w| w[1].as_secs() - w[0].as_secs() < 600.0).count();
        // Sessions guarantee many sub-10-minute gaps.
        assert!(
            short_gaps as f64 / a.len() as f64 > 0.2,
            "only {short_gaps} short gaps in {}",
            a.len()
        );
    }

    #[test]
    fn zero_rate_produces_nothing() {
        let mut rng = StdRng::seed_from_u64(4);
        let spec = SessionArrivals { sessions_per_day: 0.0, ..Default::default() };
        assert!(spec.generate(SimTime::days(5.0), &mut rng).is_empty());
    }

    #[test]
    fn flash_crowd_concentrates_arrivals_in_burst() {
        let mut rng = StdRng::seed_from_u64(6);
        let spec = FlashCrowdArrivals {
            base: SessionArrivals { sessions_per_day: 40.0, ..Default::default() },
            bursts: vec![Burst { start_s: 43_200.0, dur_s: 3.0 * 3600.0, multiplier: 10.0 }],
        };
        let a = spec.generate(SimTime::days(2.0), &mut rng);
        let in_burst =
            a.iter().filter(|t| (43_200.0..43_200.0 + 3.0 * 3600.0).contains(&t.as_secs())).count();
        // The 3 h burst window (6.25% of the horizon) at 10× intensity
        // should hold a hugely disproportionate share of arrivals.
        assert!(in_burst as f64 / a.len() as f64 > 0.25, "burst holds {in_burst}/{}", a.len());
    }

    #[test]
    fn no_bursts_matches_plain_session_process_exactly() {
        // With zero bursts the envelope and thinning are identical to the
        // base process, so the same RNG stream yields the same arrivals.
        let base = SessionArrivals::default();
        let fc = FlashCrowdArrivals { base: base.clone(), bursts: Vec::new() };
        let a = base.generate(SimTime::days(5.0), &mut StdRng::seed_from_u64(7));
        let b = fc.generate(SimTime::days(5.0), &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn diurnal_modulation_shapes_arrivals() {
        let mut rng = StdRng::seed_from_u64(5);
        let spec = SessionArrivals {
            sessions_per_day: 200.0,
            mean_session_len: 1.0,
            diurnal_depth: 0.9,
            ..Default::default()
        };
        let a = spec.generate(SimTime::days(20.0), &mut rng);
        // Split each day into night (cos>0) and day (cos<0) halves.
        let (mut day, mut night) = (0usize, 0usize);
        for t in &a {
            let phase = (t.as_secs() % 86_400.0) / 86_400.0;
            if (0.25..0.75).contains(&phase) {
                day += 1;
            } else {
                night += 1;
            }
        }
        assert!(day > night * 2, "day {day} vs night {night}");
    }
}
