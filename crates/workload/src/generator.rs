//! Putting it together: fleet + edges + datasets + arrivals → a workload.

use crate::arrivals::{Burst, FlashCrowdArrivals, SessionArrivals};
use crate::datasets::DatasetSampler;
use crate::fleet::FleetSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wdt_sim::EndpointCatalog;
use wdt_types::{EdgeId, EndpointId, EndpointType, SeedSeq, SimTime, TransferId, TransferRequest};

/// Specification of a complete synthetic workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Fleet composition.
    pub fleet: FleetSpec,
    /// Number of heavy (hub-to-hub) edges — the paper models 30.
    pub heavy_edges: usize,
    /// Mean sessions/day on each heavy edge.
    pub heavy_sessions_per_day: f64,
    /// Mean transfers per session on heavy edges.
    pub heavy_session_len: f64,
    /// Number of sparse edges (most see a single transfer ever).
    pub sparse_edges: usize,
    /// Simulated duration in days.
    pub days: f64,
    /// Arrival mix on heavy edges. The default (`Diurnal { depth: 0.5 }`)
    /// reproduces the historical generator bit-for-bit.
    pub mix: ArrivalMix,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            fleet: FleetSpec::default(),
            heavy_edges: 30,
            heavy_sessions_per_day: 10.0,
            heavy_session_len: 4.0,
            sparse_edges: 400,
            days: 30.0,
            mix: ArrivalMix::default(),
        }
    }
}

/// The arrival regime on heavy edges. Sparse long-tail traffic is uniform
/// over the horizon in every mix.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalMix {
    /// Session arrivals with a sinusoidal day/night swing (the historical
    /// default at `depth = 0.5`).
    Diurnal {
        /// Modulation depth in [0, 1).
        depth: f64,
    },
    /// Flat Poisson session starts — no day/night swing.
    Poisson,
    /// Diurnal base plus burst windows multiplying session intensity.
    FlashCrowd {
        /// Diurnal depth of the base process.
        depth: f64,
        /// Burst windows applied to every heavy edge.
        bursts: Vec<Burst>,
    },
}

impl Default for ArrivalMix {
    fn default() -> Self {
        ArrivalMix::Diurnal { depth: 0.5 }
    }
}

impl ArrivalMix {
    /// Generate one heavy edge's arrivals. Each mix consumes the shared
    /// RNG through the same thinning construction; `Diurnal { 0.5 }`
    /// draws the identical stream the pre-mix generator drew.
    fn generate<R: Rng>(
        &self,
        sessions_per_day: f64,
        mean_session_len: f64,
        horizon: SimTime,
        rng: &mut R,
    ) -> Vec<SimTime> {
        let base = |depth: f64| SessionArrivals {
            sessions_per_day,
            mean_session_len,
            diurnal_depth: depth,
            ..Default::default()
        };
        match self {
            ArrivalMix::Diurnal { depth } => base(*depth).generate(horizon, rng),
            ArrivalMix::Poisson => base(0.0).generate(horizon, rng),
            ArrivalMix::FlashCrowd { depth, bursts } => {
                FlashCrowdArrivals { base: base(*depth), bursts: bursts.clone() }
                    .generate(horizon, rng)
            }
        }
    }
}

/// A generated workload: the endpoint fleet plus every transfer request,
/// sorted by submit time with dense ids.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The endpoint fleet.
    pub endpoints: EndpointCatalog,
    /// All requests, sorted by submit time.
    pub requests: Vec<TransferRequest>,
    /// The heavy edges, in generation order.
    pub heavy_edges: Vec<EdgeId>,
}

/// A user's habitual tunable parameters on one edge. Users rarely change
/// `C`/`P` (which is why the paper's per-edge models drop them as
/// low-variance features).
fn habitual_params<R: Rng>(rng: &mut R) -> (u32, u32) {
    let c = *pick_weighted(rng, &[(1u32, 20), (2, 30), (4, 25), (8, 15), (16, 10)]);
    let p = *pick_weighted(rng, &[(1u32, 25), (2, 25), (4, 30), (8, 20)]);
    (c, p)
}

fn pick_weighted<'a, R: Rng, T>(rng: &mut R, items: &'a [(T, u32)]) -> &'a T {
    let total: u32 = items.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen_range(0..total);
    for (item, w) in items {
        if x < *w {
            return item;
        }
        x -= w;
    }
    &items[items.len() - 1].0
}

impl WorkloadSpec {
    /// Generate the workload.
    pub fn generate(&self, seed: &SeedSeq) -> Workload {
        let endpoints = self.fleet.build(seed);
        let mut rng = StdRng::seed_from_u64(seed.derive("workload"));
        let horizon = SimTime::days(self.days);

        // Hub endpoints: servers at the first 12 catalog sites (the paper's
        // heavily used facilities).
        let hub_sites: Vec<&str> = (0..12).map(|i| wdt_geo::SiteCatalog::get(i).name).collect();
        let hubs: Vec<EndpointId> = endpoints
            .iter()
            .filter(|e| e.kind == EndpointType::Server && hub_sites.contains(&e.site.as_str()))
            .map(|e| e.id)
            .collect();
        assert!(hubs.len() >= 2, "need at least two hub endpoints");

        // Distinct ordered hub pairs for heavy edges.
        let mut heavy_edges = Vec::new();
        let mut guard = 0;
        while heavy_edges.len() < self.heavy_edges {
            guard += 1;
            assert!(guard < 100_000, "cannot find enough distinct hub pairs");
            let src = hubs[rng.gen_range(0..hubs.len())];
            let dst = hubs[rng.gen_range(0..hubs.len())];
            if src == dst {
                continue;
            }
            let e = EdgeId::new(src, dst);
            if !heavy_edges.contains(&e) {
                heavy_edges.push(e);
            }
        }

        let mut raw: Vec<TransferRequest> = Vec::new();
        let placeholder = TransferId(0);

        // Heavy-edge traffic.
        let heavy_data = DatasetSampler::heavy_edge();
        for edge in &heavy_edges {
            let (c, p) = habitual_params(&mut rng);
            let per_day = self.heavy_sessions_per_day * rng.gen_range(0.5..1.6);
            for t in self.mix.generate(per_day, self.heavy_session_len, horizon, &mut rng) {
                let d = heavy_data.sample(&mut rng);
                // Heavy-edge users run the same tool configuration every
                // time, so C and P are constant within an edge — which is
                // exactly why the paper's per-edge models eliminate them
                // as zero-variance features (§5.1).
                raw.push(TransferRequest {
                    id: placeholder,
                    src: edge.src,
                    dst: edge.dst,
                    submit: t,
                    bytes: d.bytes,
                    files: d.files,
                    dirs: d.dirs,
                    concurrency: c,
                    parallelism: p,
                    checksum: true,
                });
            }
        }

        // Sparse long-tail edges: mostly one transfer each, occasionally a
        // few (Zipf-ish count), never GCP→GCP (unsupported pre-2016, §5.1).
        let sparse_data = DatasetSampler::production();
        let n_eps = endpoints.len();
        for _ in 0..self.sparse_edges {
            let (src, dst) = loop {
                let a = EndpointId(rng.gen_range(0..n_eps) as u32);
                let b = EndpointId(rng.gen_range(0..n_eps) as u32);
                if a == b {
                    continue;
                }
                let both_personal = endpoints.get(a).kind == EndpointType::Personal
                    && endpoints.get(b).kind == EndpointType::Personal;
                if !both_personal {
                    break (a, b);
                }
            };
            // 75% single-transfer, then a decaying tail.
            let count = match rng.gen_range(0.0..1.0) {
                x if x < 0.75 => 1,
                x if x < 0.90 => rng.gen_range(2..5),
                x if x < 0.97 => rng.gen_range(5..30),
                x if x < 0.995 => rng.gen_range(30..200),
                _ => rng.gen_range(200..900),
            };
            let (c, p) = habitual_params(&mut rng);
            // Personal endpoints cannot absorb bulk-science volumes: cap at
            // 50 GB (nobody ships 20 TB to a laptop, and the simulation
            // would otherwise crawl through month-long flows).
            let personal_involved = endpoints.get(src).kind == EndpointType::Personal
                || endpoints.get(dst).kind == EndpointType::Personal;
            for _ in 0..count {
                let mut d = sparse_data.sample(&mut rng);
                if personal_involved && d.bytes.as_f64() > 5.0e10 {
                    let ratio = 5.0e10 / d.bytes.as_f64();
                    d.bytes = wdt_types::Bytes::new(5.0e10);
                    d.files = ((d.files as f64 * ratio).round() as u64).max(1);
                    d.dirs = d.dirs.min(d.files);
                }
                raw.push(TransferRequest {
                    id: placeholder,
                    src,
                    dst,
                    submit: SimTime::seconds(rng.gen_range(0.0..horizon.as_secs())),
                    bytes: d.bytes,
                    files: d.files,
                    dirs: d.dirs,
                    concurrency: c,
                    parallelism: p,
                    checksum: true,
                });
            }
        }

        // Dense ids in submit order.
        raw.sort_by_key(|a| a.submit);
        for (i, r) in raw.iter_mut().enumerate() {
            r.id = TransferId(i as u64);
        }
        Workload { endpoints, requests: raw, heavy_edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec {
            fleet: FleetSpec { sites: 20, extra_servers: 6, personal: 10 },
            heavy_edges: 8,
            heavy_sessions_per_day: 6.0,
            heavy_session_len: 3.0,
            sparse_edges: 100,
            days: 10.0,
            mix: ArrivalMix::default(),
        }
    }

    #[test]
    fn workload_is_sorted_with_dense_ids() {
        let w = small_spec().generate(&SeedSeq::new(1));
        for (i, r) in w.requests.iter().enumerate() {
            assert_eq!(r.id, TransferId(i as u64));
        }
        for pair in w.requests.windows(2) {
            assert!(pair[0].submit <= pair[1].submit);
        }
    }

    #[test]
    fn heavy_edges_carry_most_traffic() {
        let w = small_spec().generate(&SeedSeq::new(2));
        let mut per_edge: HashMap<EdgeId, usize> = HashMap::new();
        for r in &w.requests {
            *per_edge.entry(EdgeId::new(r.src, r.dst)).or_default() += 1;
        }
        for e in &w.heavy_edges {
            let n = per_edge.get(e).copied().unwrap_or(0);
            assert!(n > 50, "heavy edge {e} has only {n} transfers");
        }
        // Long tail: many edges with very few transfers.
        let singles = per_edge.values().filter(|&&n| n <= 2).count();
        assert!(singles > 30, "only {singles} near-single-transfer edges");
    }

    #[test]
    fn no_gcp_to_gcp_edges() {
        let w = small_spec().generate(&SeedSeq::new(3));
        for r in &w.requests {
            let both = w.endpoints.get(r.src).kind == EndpointType::Personal
                && w.endpoints.get(r.dst).kind == EndpointType::Personal;
            assert!(!both, "found GCP→GCP transfer");
        }
    }

    #[test]
    fn deterministic() {
        let a = small_spec().generate(&SeedSeq::new(7));
        let b = small_spec().generate(&SeedSeq::new(7));
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.heavy_edges, b.heavy_edges);
    }

    #[test]
    fn habitual_params_dominate_on_heavy_edges() {
        let w = small_spec().generate(&SeedSeq::new(4));
        for e in &w.heavy_edges {
            let mut counts: HashMap<(u32, u32), usize> = HashMap::new();
            let mut total = 0usize;
            for r in &w.requests {
                if EdgeId::new(r.src, r.dst) == *e {
                    *counts.entry((r.concurrency, r.parallelism)).or_default() += 1;
                    total += 1;
                }
            }
            let top = counts.values().max().copied().unwrap_or(0);
            assert!(
                top as f64 / total as f64 > 0.6,
                "edge {e}: habitual params only {top}/{total}"
            );
        }
    }

    #[test]
    fn poisson_mix_flattens_heavy_arrivals() {
        let mk =
            |mix| WorkloadSpec { mix, sparse_edges: 0, ..small_spec() }.generate(&SeedSeq::new(11));
        let count_day_half = |w: &Workload| {
            w.requests
                .iter()
                .filter(|r| {
                    let phase = (r.submit.as_secs() % 86_400.0) / 86_400.0;
                    (0.25..0.75).contains(&phase)
                })
                .count() as f64
                / w.requests.len() as f64
        };
        let diurnal = mk(ArrivalMix::Diurnal { depth: 0.9 });
        let poisson = mk(ArrivalMix::Poisson);
        assert!(count_day_half(&diurnal) > 0.60, "diurnal not day-shifted");
        let p = count_day_half(&poisson);
        assert!((0.40..0.60).contains(&p), "poisson not flat: {p}");
    }

    #[test]
    fn flash_crowd_mix_loads_the_burst_window() {
        let bursts = vec![Burst { start_s: 86_400.0, dur_s: 4.0 * 3600.0, multiplier: 12.0 }];
        let spec = WorkloadSpec {
            mix: ArrivalMix::FlashCrowd { depth: 0.5, bursts },
            sparse_edges: 0,
            ..small_spec()
        };
        let w = spec.generate(&SeedSeq::new(12));
        let frac = w
            .requests
            .iter()
            .filter(|r| (86_400.0..86_400.0 + 4.0 * 3600.0).contains(&r.submit.as_secs()))
            .count() as f64
            / w.requests.len() as f64;
        // 1.7% of the horizon at 12× should carry far more than its share.
        assert!(frac > 0.10, "burst window carries only {frac}");
    }

    #[test]
    fn heavy_edge_endpoints_are_hubs() {
        let w = small_spec().generate(&SeedSeq::new(5));
        for e in &w.heavy_edges {
            assert_eq!(w.endpoints.get(e.src).kind, EndpointType::Server);
            assert_eq!(w.endpoints.get(e.dst).kind, EndpointType::Server);
        }
    }
}
