//! Property tests over the workload generators, per the verification
//! plan in DESIGN.md: statistical generators are checked for structural
//! invariants (finiteness, ordering, bounds) on randomized
//! parameterizations, and the Zipf popularity model is checked for
//! statistical round-tripping (sample from a known exponent, fit it
//! back).

#![cfg(test)]

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wdt_types::SimTime;

use crate::arrivals::SessionArrivals;
use crate::datasets::DatasetSampler;
use crate::popularity::{fit_exponent, ZipfPopularity};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sampling a Zipf law and fitting the exponent back recovers it.
    /// The fit uses dense head ranks only; with 60k draws the estimator
    /// is well inside ±0.15 across the exponent range the edge census
    /// calls for.
    #[test]
    fn zipf_exponent_round_trips(s in 0.7f64..1.6, seed in 0u64..1000) {
        let n = 150usize;
        let z = ZipfPopularity::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; n];
        for _ in 0..60_000 {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        let fit = fit_exponent(&counts, 20).expect("head ranks are dense");
        prop_assert!((fit - s).abs() < 0.15, "fit {fit} vs true {s} (seed {seed})");
    }

    /// Heavy-tailed dataset draws are always finite, positive, and
    /// structurally consistent (≥1 file, dirs between 1 and files,
    /// bytes within the sampler's hard cap).
    #[test]
    fn dataset_sizes_finite_positive(seed in 0u64..5000, heavy in 0u8..2) {
        let sampler = if heavy == 1 {
            DatasetSampler::heavy_edge()
        } else {
            DatasetSampler::production()
        };
        let cap = if heavy == 1 { 1.0e13 } else { 4.0e12 };
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let d = sampler.sample(&mut rng);
            let b = d.bytes.as_f64();
            prop_assert!(b.is_finite() && b >= 1.0, "bytes {b}");
            prop_assert!(b <= cap, "bytes {b} above cap {cap}");
            prop_assert!(d.files >= 1);
            prop_assert!((1..=d.files).contains(&d.dirs), "dirs {} files {}", d.dirs, d.files);
        }
    }

    /// Diurnally modulated session arrivals come out non-decreasing in
    /// time and inside the horizon, for any reasonable parameterization.
    #[test]
    fn diurnal_arrivals_non_decreasing(
        seed in 0u64..5000,
        sessions_per_day in 0.5f64..40.0,
        depth in 0.0f64..0.95,
        days in 0.5f64..12.0,
    ) {
        let spec = SessionArrivals {
            sessions_per_day,
            diurnal_depth: depth,
            ..Default::default()
        };
        let horizon = SimTime::days(days);
        let mut rng = StdRng::seed_from_u64(seed);
        let arrivals = spec.generate(horizon, &mut rng);
        for w in arrivals.windows(2) {
            prop_assert!(w[0] <= w[1], "out of order: {:?} then {:?}", w[0], w[1]);
        }
        for t in &arrivals {
            prop_assert!(*t >= SimTime::ZERO && *t <= horizon, "outside horizon: {t:?}");
        }
    }
}
