//! Edge-popularity model: Zipf-distributed transfer counts per edge.
//!
//! The paper's §3.2 census is extremely skewed — 36,599 edges saw exactly
//! one transfer while 182 edges saw a thousand or more. A Zipf law over
//! edge ranks reproduces that shape with a single exponent. This module
//! provides a sampler (precomputed CDF + binary search, so draws are
//! O(log n)) and an exponent estimator so tests can close the loop:
//! sample from a known exponent, fit it back, and require agreement.

use rand::Rng;

/// Zipf sampler over ranks `1..=n` with `P(rank = r) ∝ r^{-s}`.
#[derive(Debug, Clone)]
pub struct ZipfPopularity {
    /// Cumulative probabilities; `cdf[r-1]` = P(rank ≤ r). Last entry is
    /// exactly 1.0 by construction.
    cdf: Vec<f64>,
    exponent: f64,
}

impl ZipfPopularity {
    /// Build a sampler over `n ≥ 1` ranks with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        assert!(s > 0.0 && s.is_finite(), "exponent must be positive and finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += (r as f64).powf(-s);
            cdf.push(acc);
        }
        let norm = acc;
        for c in &mut cdf {
            *c /= norm;
        }
        // Guard against the last entry landing at 0.999999... and a
        // pathological u = 1.0-eps draw falling past it.
        *cdf.last_mut().expect("non-empty") = 1.0;
        ZipfPopularity { cdf, exponent: s }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the sampler has no ranks (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The exponent this sampler was built with.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability mass of a given 1-based rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        assert!((1..=self.len()).contains(&rank), "rank out of range");
        let hi = self.cdf[rank - 1];
        let lo = if rank == 1 { 0.0 } else { self.cdf[rank - 2] };
        hi - lo
    }

    /// Draw one 1-based rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u = rng.gen_range(0.0..1.0);
        // First index whose cumulative mass exceeds u.
        self.cdf.partition_point(|&c| c <= u) + 1
    }
}

/// Fit a Zipf exponent to observed per-rank counts by least squares on
/// `ln(count) = a - s·ln(rank)`, using only ranks with at least
/// `min_count` observations (sparse tail ranks are dominated by counting
/// noise and would bias the slope). Returns `None` if fewer than three
/// ranks qualify.
pub fn fit_exponent(counts: &[u64], min_count: u64) -> Option<f64> {
    let pts: Vec<(f64, f64)> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c >= min_count.max(1))
        .map(|(i, &c)| (((i + 1) as f64).ln(), (c as f64).ln()))
        .collect();
    if pts.len() < 3 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    Some(-slope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one_and_decreases() {
        let z = ZipfPopularity::new(100, 1.2);
        let sum: f64 = (1..=100).map(|r| z.pmf(r)).sum();
        assert!((sum - 1.0).abs() < 1e-12, "pmf sums to {sum}");
        for r in 1..100 {
            assert!(z.pmf(r) > z.pmf(r + 1), "pmf not decreasing at rank {r}");
        }
    }

    #[test]
    fn samples_cover_range_and_favor_head() {
        let z = ZipfPopularity::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u64; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        assert!(counts[0] > counts[9] && counts[9] > 0, "head not favored: {counts:?}");
        assert_eq!(counts.iter().sum::<u64>(), 20_000);
    }

    #[test]
    fn fit_recovers_known_exponent() {
        for s in [0.8, 1.0, 1.5] {
            let z = ZipfPopularity::new(200, s);
            let mut rng = StdRng::seed_from_u64(11);
            let mut counts = vec![0u64; 200];
            for _ in 0..200_000 {
                counts[z.sample(&mut rng) - 1] += 1;
            }
            let fit = fit_exponent(&counts, 20).expect("enough dense ranks");
            assert!((fit - s).abs() < 0.1, "fit {fit} vs true {s}");
        }
    }

    #[test]
    fn fit_refuses_degenerate_input() {
        assert_eq!(fit_exponent(&[5, 3], 1), None);
        assert_eq!(fit_exponent(&[0, 0, 0, 0], 1), None);
    }

    #[test]
    fn single_rank_always_sampled() {
        let z = ZipfPopularity::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }
}
