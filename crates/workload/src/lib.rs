//! # wdt-workload — synthetic Globus-like workload generation
//!
//! Replaces the proprietary Globus production trace with a synthetic
//! workload whose *statistics* match what the paper reports:
//!
//! * a fleet of endpoints at real research sites, mixing facility-class
//!   Globus Connect Server deployments and personal (GCP) machines, with
//!   heterogeneous NICs/storage (§2, Figure 2, Table 4);
//! * a heavy-tailed edge-popularity distribution — most edges see a single
//!   transfer ever, a few dozen "heavy" edges between hub facilities carry
//!   hundreds to thousands (§3.2's census: 36,599 single-transfer edges vs
//!   182 edges with ≥1000);
//! * transfer datasets spanning ~ten orders of magnitude in size with
//!   heavy-tailed file counts (Figure 6);
//! * per-edge habitual tunable parameters (C, P barely vary within an edge,
//!   which is why the paper's models eliminate them as low-variance);
//! * bursty session arrivals with a diurnal rhythm, so competing load is a
//!   real, time-correlated phenomenon.

pub mod arrivals;
pub mod datasets;
pub mod fleet;
pub mod generator;
pub mod popularity;

#[cfg(test)]
mod proptests;

pub use arrivals::{Burst, FlashCrowdArrivals, SessionArrivals};
pub use datasets::DatasetSampler;
pub use fleet::FleetSpec;
pub use generator::{ArrivalMix, Workload, WorkloadSpec};
pub use popularity::{fit_exponent, ZipfPopularity};
