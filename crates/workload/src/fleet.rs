//! Endpoint fleet generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wdt_geo::{SiteCatalog, SITES};
use wdt_sim::{Endpoint, EndpointCatalog};
use wdt_storage::StorageSystem;
use wdt_types::{EndpointId, Rate, SeedSeq};

/// How to build the fleet.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Number of distinct sites to use (taken from the front of the geo
    /// catalog, so the paper's named facilities are always included).
    pub sites: usize,
    /// Facility (GCS) endpoints beyond one per site, spread over sites —
    /// big facilities run several endpoints (e.g. NERSC-DTN and
    /// NERSC-Edison in the paper).
    pub extra_servers: usize,
    /// Personal (GCP) endpoints, attached to random sites.
    pub personal: usize,
}

impl Default for FleetSpec {
    fn default() -> Self {
        FleetSpec { sites: 40, extra_servers: 15, personal: 30 }
    }
}

impl FleetSpec {
    /// Build the endpoint catalog. Hardware is heterogeneous but seeded:
    /// the first ten sites (the paper's named facilities) get beefy DTNs,
    /// the tail gets smaller ones.
    pub fn build(&self, seed: &SeedSeq) -> EndpointCatalog {
        assert!(self.sites >= 2 && self.sites <= SITES.len(), "sites out of range");
        let mut rng = StdRng::seed_from_u64(seed.derive("fleet"));
        let mut cat = EndpointCatalog::new();
        let mut next_id = 0u32;
        let mut push_server =
            |cat: &mut EndpointCatalog, site_idx: usize, rng: &mut StdRng, suffix: &str| {
                let site = SiteCatalog::get(site_idx);
                let major = site_idx < 10;
                let dtns = if major { rng.gen_range(2..=6) } else { rng.gen_range(1..=2) };
                let nic = if major {
                    *[Rate::gbit(10.0), Rate::gbit(10.0), Rate::gbit(40.0)]
                        .get(rng.gen_range(0..3usize))
                        .expect("index in range")
                } else {
                    *[Rate::gbit(1.0), Rate::gbit(10.0)]
                        .get(rng.gen_range(0..2usize))
                        .expect("in range")
                };
                let read = nic * rng.gen_range(0.9..1.6);
                let write = read * rng.gen_range(0.55..0.9);
                let ep = Endpoint::server(
                    EndpointId(next_id),
                    format!("{}#{}", site.name.to_lowercase(), suffix),
                    site.name,
                    site.location,
                    dtns,
                    nic,
                    StorageSystem::facility(read, write),
                );
                cat.push(ep);
                next_id += 1;
            };

        for site_idx in 0..self.sites {
            push_server(&mut cat, site_idx, &mut rng, "dtn");
        }
        for k in 0..self.extra_servers {
            // Extra endpoints concentrate at major sites.
            let site_idx = rng.gen_range(0..self.sites.min(12));
            push_server(&mut cat, site_idx, &mut rng, &format!("dtn{}", k + 2));
        }
        for k in 0..self.personal {
            let site_idx = rng.gen_range(0..self.sites);
            let site = SiteCatalog::get(site_idx);
            cat.push(Endpoint::personal(
                EndpointId(next_id),
                format!("{}#laptop{k}", site.name.to_lowercase()),
                site.name,
                site.location,
            ));
            next_id += 1;
        }
        cat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdt_types::EndpointType;

    #[test]
    fn fleet_has_requested_composition() {
        let spec = FleetSpec { sites: 20, extra_servers: 5, personal: 10 };
        let cat = spec.build(&SeedSeq::new(1));
        assert_eq!(cat.len(), 35);
        let servers = cat.iter().filter(|e| e.kind == EndpointType::Server).count();
        let personal = cat.iter().filter(|e| e.kind == EndpointType::Personal).count();
        assert_eq!(servers, 25);
        assert_eq!(personal, 10);
    }

    #[test]
    fn fleet_is_deterministic() {
        let spec = FleetSpec::default();
        let a = spec.build(&SeedSeq::new(7));
        let b = spec.build(&SeedSeq::new(7));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.nic, y.nic);
            assert_eq!(x.dtns, y.dtns);
        }
    }

    #[test]
    fn major_sites_come_first_and_are_beefier() {
        let cat = FleetSpec::default().build(&SeedSeq::new(3));
        // First endpoint sits at the first catalog site (ANL).
        assert_eq!(cat.get(EndpointId(0)).site, "ANL");
        let major_nic = cat.get(EndpointId(0)).nic_out().as_gbit();
        assert!(major_nic >= 10.0, "major site NIC {major_nic}");
    }

    #[test]
    fn extra_servers_share_sites_with_primaries() {
        let spec = FleetSpec { sites: 12, extra_servers: 8, personal: 0 };
        let cat = spec.build(&SeedSeq::new(5));
        // Every extra server's site already hosts the primary endpoint.
        let primary_sites: Vec<&str> =
            (0..12).map(|i| cat.get(EndpointId(i)).site.as_str()).collect();
        for i in 12..20 {
            assert!(primary_sites.contains(&cat.get(EndpointId(i)).site.as_str()));
        }
    }

    #[test]
    #[should_panic(expected = "sites out of range")]
    fn too_many_sites_panics() {
        FleetSpec { sites: 10_000, extra_servers: 0, personal: 0 }.build(&SeedSeq::new(1));
    }
}
