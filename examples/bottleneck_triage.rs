//! Bottleneck triage with the analytical model (paper §3).
//!
//! Given a poorly performing edge, a transfer admin wants to know *which
//! subsystem to upgrade*: source storage, the network, or destination
//! storage. We run the paper's measurement campaign (`disk→/dev/null`,
//! `/dev/zero→disk`, memory-to-memory) on each edge of a small fleet,
//! apply Eq. 1, and report the limiter and the headroom an upgrade would
//! unlock.
//!
//! Run with: `cargo run --release --example bottleneck_triage`

use wdt::prelude::*;
use wdt::sim::instruments::measure_edge_maxima;

fn main() {
    // A deliberately unbalanced fleet.
    let mut cat = EndpointCatalog::new();
    let specs: [(&str, u32, f64, f64, f64); 3] = [
        // site, dtns, nic Gb/s, read Gb/s, write Gb/s
        ("ANL", 2, 10.0, 18.0, 14.0),  // healthy
        ("UWisc", 1, 10.0, 3.0, 2.0),  // starved storage
        ("CERN", 2, 10.0, 18.0, 14.0), // healthy but far away
    ];
    for (i, (site, dtns, nic, rd, wr)) in specs.iter().enumerate() {
        let loc = SiteCatalog::by_name(site).expect("site").location;
        cat.push(Endpoint::server(
            EndpointId(i as u32),
            format!("{}#dtn", site.to_lowercase()),
            *site,
            loc,
            *dtns,
            Rate::gbit(*nic),
            StorageSystem::facility(Rate::gbit(*rd), Rate::gbit(*wr)),
        ));
    }

    let seed = SeedSeq::new(7);
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8}  {:<12} headroom if fixed",
        "edge", "Rmax", "DRmax", "MMmax", "DWmax", "limiter"
    );
    for src in 0..3u32 {
        for dst in 0..3u32 {
            if src == dst {
                continue;
            }
            let m = measure_edge_maxima(
                &cat,
                EndpointId(src),
                EndpointId(dst),
                5,
                &seed.subseq(&format!("{src}-{dst}")),
            );
            let ceilings = SubsystemCeilings {
                dr_max: m.dr_max.as_f64(),
                mm_max: m.mm_max.as_f64(),
                dw_max: m.dw_max.as_f64(),
            };
            // If the limiting subsystem were upgraded to match the next
            // ceiling, the bound would rise to the second-smallest term.
            let mut v = [ceilings.dr_max, ceilings.mm_max, ceilings.dw_max];
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let headroom = (v[1] / v[0] - 1.0) * 100.0;
            println!(
                "{:<16} {:>7.2}G {:>7.2}G {:>7.2}G {:>7.2}G  {:<12} +{:.0}%",
                format!("{}->{}", cat.get(EndpointId(src)).site, cat.get(EndpointId(dst)).site),
                m.r_max.as_gbit(),
                m.dr_max.as_gbit(),
                m.mm_max.as_gbit(),
                m.dw_max.as_gbit(),
                format!("{:?}", ceilings.limiter()),
                headroom,
            );
        }
    }
    println!("\nreading: edges touching UWisc are storage-limited (upgrade its disks);");
    println!("healthy-pair edges are bounded by NIC/write ceilings as expected.");
}
