//! Concurrency capacity planning (paper Figure 4 + conclusions).
//!
//! The paper's closing implication: "aggregate performance can be improved
//! by scheduling transfers and/or reducing concurrency and parallelism."
//! We simulate one busy destination endpoint under increasing offered
//! concurrency, fit the Weibull throughput curve, and recommend the
//! concurrency cap that maximizes aggregate ingest.
//!
//! Run with: `cargo run --release --example capacity_planning`

use wdt::features::{bucket_by_concurrency, concurrency_profile};
use wdt::ml::WeibullCurve;
use wdt::prelude::*;

fn world() -> EndpointCatalog {
    let mut cat = EndpointCatalog::new();
    for (i, site) in ["NERSC", "ANL", "ORNL", "TACC", "SDSC"].iter().enumerate() {
        let loc = SiteCatalog::by_name(site).expect("site").location;
        cat.push(Endpoint::server(
            EndpointId(i as u32),
            format!("{}#dtn", site.to_lowercase()),
            *site,
            loc,
            1,
            Rate::gbit(10.0),
            StorageSystem::facility(Rate::gbit(8.0), Rate::gbit(6.0)),
        ));
    }
    cat
}

fn main() {
    // Many sources hammer endpoint 0 with varying per-transfer concurrency,
    // producing a wide range of instantaneous GridFTP instance counts.
    let seed = SeedSeq::new(4);
    let cfg = SimConfig { max_active_per_endpoint: 64, ..SimConfig::default() };
    let mut sim = Simulator::new(world(), cfg, &seed);
    let mut id = 0u64;
    for wave in 0..240u64 {
        let n_parallel = 1 + (wave % 12); // offered load ramps up and down
        for k in 0..n_parallel {
            sim.submit(TransferRequest {
                id: TransferId(id),
                src: EndpointId(1 + (id % 4) as u32),
                dst: EndpointId(0),
                submit: SimTime::seconds(wave as f64 * 900.0 + k as f64 * 5.0),
                bytes: Bytes::gb(30.0),
                files: 100,
                dirs: 5,
                concurrency: 2 + (id % 7) as u32,
                parallelism: 4,
                checksum: true,
            });
            id += 1;
        }
    }
    let out = sim.run();
    println!("simulated {} transfers into the hot endpoint", out.records.len());

    // The Figure 4 sweep on the hot endpoint.
    let samples = concurrency_profile(&out.records, EndpointId(0));
    let buckets = bucket_by_concurrency(&samples);
    let total_w: f64 = buckets.iter().map(|b| b.2).sum();
    let pts: Vec<(f64, f64)> =
        buckets.iter().filter(|b| b.2 > 0.002 * total_w).map(|b| (b.0, b.1)).collect();

    println!("\nconcurrency -> mean aggregate ingest (MB/s):");
    let step = (pts.len() / 12).max(1);
    for (c, r) in pts.iter().step_by(step) {
        println!("  {:>4.0} instances: {:>7.1}", c, r / 1e6);
    }

    match WeibullCurve::fit(&pts) {
        Some(w) if w.k > 1.0 => {
            let best = w.peak_x();
            println!("\nWeibull fit: k = {:.2}, λ = {:.1}", w.k, w.lambda);
            println!(
                "recommended endpoint concurrency cap: ≈ {:.0} GridFTP instances \
                 (throughput peaks there, then declines — the paper's Figure 4 shape)",
                best
            );
        }
        Some(_) => {
            println!("\nthroughput still rising at max observed concurrency — no cap needed yet")
        }
        None => println!("\nnot enough concurrency variety to fit a curve"),
    }
}
