//! Workflow scheduling with learned rate predictions.
//!
//! The paper's headline application: "our predictions can be used for
//! distributed workflow scheduling and optimization". A science workflow
//! must replicate datasets from a source facility to *either* of two
//! destination facilities. We train a global rate model on historical
//! traffic, then place each dataset on the destination the model predicts
//! to be faster *given current competing load* — and compare the achieved
//! makespan against a load-blind round-robin placement.
//!
//! Run with: `cargo run --release --example workflow_scheduler`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wdt::prelude::*;
use wdt::workload::DatasetSampler;

/// Build a world: one source, two destinations (one beefier than the other).
fn world() -> EndpointCatalog {
    let mut cat = EndpointCatalog::new();
    let specs = [
        ("ANL", 3, 40.0, 16.0, 12.0),  // source
        ("NERSC", 2, 10.0, 12.0, 9.0), // destination A
        ("TACC", 4, 10.0, 20.0, 15.0), // destination B (stronger storage)
    ];
    for (i, (site, dtns, nic, rd, wr)) in specs.iter().enumerate() {
        let loc = SiteCatalog::by_name(site).expect("site").location;
        cat.push(Endpoint::server(
            EndpointId(i as u32),
            format!("{}#dtn", site.to_lowercase()),
            *site,
            loc,
            *dtns,
            Rate::gbit(*nic),
            StorageSystem::facility(Rate::gbit(*rd), Rate::gbit(*wr)),
        ));
    }
    cat
}

/// Simulate historical traffic and train the global model.
fn train_model(seed: &SeedSeq) -> GlobalModel {
    let mut sim = Simulator::new(world(), SimConfig::default(), seed);
    sim.add_default_background(4, 0.4);
    let mut rng = StdRng::seed_from_u64(seed.derive("history"));
    let sampler = DatasetSampler::heavy_edge();
    for i in 0..4000u64 {
        let d = sampler.sample(&mut rng);
        let dst = 1 + (rng.gen_range(0..2u32));
        sim.submit(TransferRequest {
            id: TransferId(i),
            src: EndpointId(0),
            dst: EndpointId(dst),
            submit: SimTime::seconds(rng.gen_range(0.0..14.0 * 86_400.0)),
            bytes: d.bytes,
            files: d.files,
            dirs: d.dirs,
            concurrency: 4,
            parallelism: 4,
            checksum: true,
        });
    }
    let out = sim.run();
    let features = extract_features(&out.records);
    let filtered = threshold_filter(&features, 0.3);
    GlobalModel::fit(&filtered, ModelKind::Gbdt, &FitConfig::default()).expect("model fits")
}

/// The workflow's datasets.
fn datasets(seed: &SeedSeq) -> Vec<(u64, f64)> {
    let mut rng = StdRng::seed_from_u64(seed.derive("workflow"));
    (0..40).map(|i| (i, rng.gen_range(20.0..200.0))).collect()
}

/// Run the workflow with a placement policy; returns the makespan in hours.
/// `policy(i, gb)` returns the destination endpoint for dataset `i`.
fn run_workflow(seed: &SeedSeq, policy: impl Fn(u64, f64) -> EndpointId) -> f64 {
    let mut sim = Simulator::new(world(), SimConfig::default(), seed);
    sim.add_default_background(4, 0.4);
    // Ambient competing traffic the scheduler must live with: a steady
    // stream into NERSC (making it the congested choice).
    for k in 0..60u64 {
        sim.submit(TransferRequest {
            id: TransferId(10_000 + k),
            src: EndpointId(0),
            dst: EndpointId(1),
            submit: SimTime::seconds(k as f64 * 600.0),
            bytes: Bytes::gb(150.0),
            files: 500,
            dirs: 10,
            concurrency: 8,
            parallelism: 4,
            checksum: true,
        });
    }
    for (i, gb) in datasets(seed) {
        sim.submit(TransferRequest {
            id: TransferId(i),
            src: EndpointId(0),
            dst: policy(i, gb),
            submit: SimTime::seconds(i as f64 * 60.0),
            bytes: Bytes::gb(gb),
            files: 200,
            dirs: 10,
            concurrency: 4,
            parallelism: 4,
            checksum: true,
        });
    }
    let out = sim.run();
    // Makespan: first submission to last workflow-dataset completion.
    let done = out
        .records
        .iter()
        .filter(|r| r.id.0 < 10_000)
        .map(|r| r.end.as_secs())
        .fold(0.0f64, f64::max);
    done / 3600.0
}

fn main() {
    let seed = SeedSeq::new(99);
    println!("training global rate model on two weeks of history ...");
    let model = train_model(&seed.subseq("train"));

    // Model-driven policy: predict the rate to each destination assuming
    // the ambient NERSC load, pick the faster.
    let predict = |dst: u32, gb: f64| {
        let f = TransferFeatures {
            id: TransferId(0),
            edge: EdgeId::new(EndpointId(0), EndpointId(dst)),
            start: 0.0,
            end: 1.0,
            rate: 0.0,
            // NERSC carries the ambient competing stream.
            k_din: if dst == 1 { 300.0e6 } else { 0.0 },
            k_sout: 300.0e6,
            c: 4.0,
            p: 4.0,
            s_sout: 32.0,
            s_sin: 0.0,
            s_dout: 0.0,
            s_din: if dst == 1 { 32.0 } else { 0.0 },
            k_sin: 0.0,
            k_dout: 0.0,
            n_d: 10.0,
            n_b: gb * 1e9,
            n_flt: 0.0,
            g_src: 8.0,
            g_dst: if dst == 1 { 8.0 } else { 0.0 },
            n_f: 200.0,
        };
        model.predict_one(&f)
    };

    let smart = run_workflow(&seed.subseq("run"), |_, gb| {
        if predict(2, gb) >= predict(1, gb) {
            EndpointId(2)
        } else {
            EndpointId(1)
        }
    });
    let blind = run_workflow(&seed.subseq("run"), |i, _| EndpointId(1 + (i % 2) as u32));

    println!("makespan, model-driven placement: {smart:.2} h");
    println!("makespan, round-robin placement:  {blind:.2} h");
    if smart < blind {
        println!("the learned model shaved {:.0}% off the makespan", 100.0 * (1.0 - smart / blind));
    } else {
        println!("round-robin happened to win on this seed — try another");
    }
}
