//! Quickstart: simulate a week of traffic between three facilities, learn a
//! transfer-rate model from the log alone, and check how well it predicts.
//!
//! Run with: `cargo run --release --example quickstart`

use wdt::prelude::*;

fn main() {
    // 1. Build a small world: three facility endpoints.
    let mut catalog = EndpointCatalog::new();
    for (i, site) in ["ANL", "NERSC", "ORNL"].iter().enumerate() {
        let loc = SiteCatalog::by_name(site).expect("site in catalog").location;
        catalog.push(Endpoint::server(
            EndpointId(i as u32),
            format!("{}#dtn", site.to_lowercase()),
            *site,
            loc,
            2,
            Rate::gbit(10.0),
            StorageSystem::facility(Rate::gbit(12.0), Rate::gbit(9.0)),
        ));
    }

    // 2. Simulate a week of bursty traffic with hidden background load.
    let seed = SeedSeq::new(42);
    let mut sim = Simulator::new(catalog, SimConfig::default(), &seed);
    sim.add_default_background(4, 0.4);
    let mut id = 0u64;
    for day in 0..7 {
        for burst in 0..20 {
            let t0 = day as f64 * 86_400.0 + burst as f64 * 4000.0;
            for k in 0..3 {
                sim.submit(TransferRequest {
                    id: TransferId(id),
                    src: EndpointId(0),
                    dst: EndpointId(1 + (id % 2) as u32),
                    submit: SimTime::seconds(t0 + k as f64 * 120.0),
                    bytes: Bytes::gb(5.0 + (id % 17) as f64 * 4.0),
                    files: 50 + (id % 900),
                    dirs: 5,
                    concurrency: 4,
                    parallelism: 4,
                    checksum: true,
                });
                id += 1;
            }
        }
    }
    let out = sim.run();
    println!("simulated {} transfers", out.records.len());

    // 3. Engineer the paper's features from the log alone.
    let features = extract_features(&out.records);

    // 4. Train a gradient-boosted rate model on one edge (70/30 split).
    let edge = EdgeId::new(EndpointId(0), EndpointId(1));
    let on_edge: Vec<TransferFeatures> =
        features.iter().filter(|f| f.edge == edge).cloned().collect();
    let data = wdt::model::build_dataset(&on_edge, false);
    let (train, test) = data.split(0.7, 1);
    let model = FittedModel::fit(&train, ModelKind::Gbdt, &FitConfig::default())
        .expect("enough data to fit");
    let eval = model.evaluate(&test);
    println!(
        "edge {edge}: {} train / {} test transfers, MdAPE {:.1}%",
        train.len(),
        eval.n,
        eval.mdape
    );

    // 5. Ask the model what matters.
    let mut sig = model.significance();
    sig.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("top-5 features by importance:");
    for (name, v) in sig.iter().take(5) {
        println!("  {name:>6}: {v:.2}");
    }
}
