//! # wdt — explaining wide-area data transfer performance
//!
//! A Rust reproduction of *“Explaining Wide Area Data Transfer
//! Performance”* (Liu, Balaprakash, Kettimuthu, Foster — HPDC ’17): learn
//! transfer-rate models from transfer-service logs alone, with engineered
//! features for competing load at the endpoints.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`types`] — ids, units, log records, seeding;
//! * [`geo`] — sites, great-circle distance, RTT estimation;
//! * [`net`] — TCP throughput models (Mathis/Padhye, parallel streams);
//! * [`storage`] — parallel-filesystem model (contention, Lustre OST/OSS);
//! * [`sim`] — the discrete-event wide-area transfer simulator that stands
//!   in for the proprietary Globus production trace and the ESnet testbed;
//! * [`workload`] — synthetic Globus-like fleet and request generation;
//! * [`features`] — the paper's §4 feature engineering (overlap-scaled
//!   contending rates, GridFTP instance counts, TCP stream counts, …);
//! * [`ml`] — from-scratch linear regression, gradient-boosted trees,
//!   MdAPE/metrics, Pearson & MIC, Nelder–Mead, Weibull fitting;
//! * [`model`] — the paper's models: the analytical bound (Eq. 1),
//!   per-edge and global regression pipelines, and the LMT augmentation;
//! * [`serve`] — the online prediction service: versioned model registry
//!   with atomic hot-swap, micro-batched inference with admission
//!   control, an HTTP/1.1 front end, and closed/open-loop load
//!   generation.
//!
//! ## Quickstart
//!
//! ```
//! use wdt::prelude::*;
//!
//! // A two-endpoint world with one transfer.
//! let mut catalog = EndpointCatalog::new();
//! for (i, site) in ["ANL", "NERSC"].iter().enumerate() {
//!     let loc = SiteCatalog::by_name(site).unwrap().location;
//!     catalog.push(Endpoint::server(
//!         EndpointId(i as u32), format!("{site}#dtn"), *site, loc,
//!         2, Rate::gbit(10.0),
//!         StorageSystem::facility(Rate::gbit(12.0), Rate::gbit(9.0)),
//!     ));
//! }
//! let mut sim = Simulator::new(catalog, SimConfig::default(), &SeedSeq::new(7));
//! sim.submit(TransferRequest {
//!     id: TransferId(0),
//!     src: EndpointId(0),
//!     dst: EndpointId(1),
//!     submit: SimTime::ZERO,
//!     bytes: Bytes::gb(100.0),
//!     files: 1000,
//!     dirs: 10,
//!     concurrency: 4,
//!     parallelism: 4,
//!     checksum: true,
//! });
//! let out = sim.run();
//! assert_eq!(out.records.len(), 1);
//! assert!(out.records[0].rate().as_mbps() > 50.0);
//! ```

pub use wdt_features as features;
pub use wdt_geo as geo;
pub use wdt_ml as ml;
pub use wdt_model as model;
pub use wdt_net as net;
pub use wdt_serve as serve;
pub use wdt_sim as sim;
pub use wdt_storage as storage;
pub use wdt_types as types;
pub use wdt_workload as workload;

/// Everything a typical user needs in scope.
pub mod prelude {
    pub use wdt_features::{extract_features, threshold_filter, Dataset, TransferFeatures};
    pub use wdt_geo::SiteCatalog;
    pub use wdt_ml::{mdape, Gbdt, GbdtParams, LinearRegression, SplitStrategy};
    pub use wdt_model::{
        FitConfig, FittedModel, GlobalModel, ModelKind, PerEdgeConfig, SubsystemCeilings,
    };
    pub use wdt_sim::{
        BackgroundProcess, BgKind, Endpoint, EndpointCatalog, SimConfig, Simulator, TransferMode,
    };
    pub use wdt_storage::StorageSystem;
    pub use wdt_types::{
        Bytes, EdgeId, EndpointId, Rate, SeedSeq, SimTime, TransferId, TransferRecord,
        TransferRequest,
    };
    pub use wdt_workload::{ArrivalMix, Burst, FleetSpec, Workload, WorkloadSpec};
}
