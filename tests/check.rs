//! Golden-trace verification at the workspace root: the check campaign's
//! digest must match the committed snapshot in `tests/golden/`, so any
//! behavioral drift in the simulator fails plain `cargo test` — not just
//! the dedicated CI job. Refresh after an intentional change with:
//!
//! ```text
//! cargo run --release -p wdt-cli -- check \
//!     --golden tests/golden/check-campaign.digest --refresh
//! ```

use wdt_bench::CampaignSpec;
use wdt_check::{check_records, TraceDigest};

/// Must mirror the `wdt check` defaults in `crates/cli/src/commands.rs`.
fn check_spec() -> CampaignSpec {
    CampaignSpec { seed: 2017, days: 2.0, heavy_edges: 6, sparse_edges: 30, ..Default::default() }
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/check-campaign.digest")
}

#[test]
fn check_campaign_matches_committed_golden_digest() {
    let committed = TraceDigest::from_text(
        &std::fs::read_to_string(golden_path()).expect("committed golden digest"),
    )
    .expect("golden digest parses and its hash verifies");
    let out = check_spec().simulate();
    assert!(check_records(&out.records).is_empty(), "log invariants violated");
    let digest = TraceDigest::from_records(&out.records);
    let diff = committed.diff(&digest);
    assert!(
        diff.is_empty(),
        "campaign digest drifted from tests/golden/check-campaign.digest \
         ({} difference(s); first few below). If intentional, refresh with \
         `cargo run --release -p wdt-cli -- check --golden tests/golden/check-campaign.digest \
         --refresh` and commit.\n{}",
        diff.len(),
        diff.iter().take(10).cloned().collect::<Vec<_>>().join("\n")
    );
    assert_eq!(committed.hash(), digest.hash());
}

#[test]
fn golden_digest_file_is_well_formed() {
    let text = std::fs::read_to_string(golden_path()).expect("committed golden digest");
    let d = TraceDigest::from_text(&text).expect("parse");
    assert!(d.total > 500, "suspiciously small golden campaign: {} records", d.total);
    assert!(d.edges.len() > 10, "suspiciously few edges: {}", d.edges.len());
    // Every edge's quantiles are ordered and counts sum to the total.
    let sum: u64 = d.edges.values().map(|e| e.count).sum();
    assert_eq!(sum, d.total);
    for e in d.edges.values() {
        assert!(e.log2_rate_q.windows(2).all(|w| w[0] <= w[1]), "{:?}", e.log2_rate_q);
    }
}
