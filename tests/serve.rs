//! End-to-end serving: simulate → train → persist → serve over HTTP →
//! predict concurrently → hot-swap to a second model version.
//!
//! The contract under test is the serving subsystem's core promise:
//! predictions served over the wire are **bitwise identical** to offline
//! `FittedModel::predict` on the same rows — under concurrent load, and
//! across an atomic hot-swap that must not fail a single request.
//!
//! Every scenario runs against **both** HTTP front ends (the blocking
//! worker pool and the nonblocking event loop): identical traffic,
//! identical expected answers. The slow-writer scenarios pin down the
//! timeout semantics the front ends must share — a client that trickles
//! bytes across many 200 ms idle ticks but stays inside the request
//! deadline is served normally, while one that stalls past the deadline
//! is answered 408 and disconnected.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use wdt::prelude::*;
use wdt_model::build_dataset;
use wdt_serve::{AnyServer, Frontend, HttpClient, ModelRegistry, ServeConfig, ServeSchema};
use wdt_types::JsonValue;

/// A small simulated campaign, reduced to the prediction-time dataset.
fn campaign() -> wdt_features::Dataset {
    let w = WorkloadSpec {
        fleet: FleetSpec { sites: 10, extra_servers: 2, personal: 4 },
        heavy_edges: 3,
        heavy_sessions_per_day: 12.0,
        heavy_session_len: 4.0,
        sparse_edges: 15,
        days: 3.0,
        mix: ArrivalMix::default(),
    }
    .generate(&SeedSeq::new(23));
    let mut sim = Simulator::new(w.endpoints, SimConfig::default(), &SeedSeq::new(23));
    sim.add_default_background(3, 0.3);
    for r in w.requests {
        sim.submit(r);
    }
    let records = sim.run().records;
    build_dataset(&extract_features(&records), false)
}

/// Render one schema-ordered row as a `/predict` body.
fn body_for(names: &[String], row: &[f64]) -> String {
    JsonValue::Obj(names.iter().cloned().zip(row.iter().map(|&v| JsonValue::Num(v))).collect())
        .to_string()
}

/// POST one row and return (version, rate) after asserting success.
fn predict_one(client: &mut HttpClient, names: &[String], row: &[f64]) -> (String, f64) {
    let (status, body) = client.post("/predict", &body_for(names, row)).expect("request");
    assert_eq!(status, 200, "predict failed: {body}");
    let v = JsonValue::parse(&body).expect("response json");
    (
        v.field("version").unwrap().as_str().unwrap().to_string(),
        v.field("rate").unwrap().as_f64().unwrap(),
    )
}

/// A registry directory with a quick throwaway model, plus its offline
/// twin reloaded through the same persistence path the server uses.
fn quick_registry(name: &str) -> (Arc<ModelRegistry>, wdt_model::FittedModel) {
    let dir = std::env::temp_dir().join("wdt-serve-e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("model dir");
    let schema = ServeSchema::prediction();
    let w = schema.width();
    let x: Vec<Vec<f64>> =
        (0..150).map(|i| (0..w).map(|j| ((i * (j + 2)) % 19) as f64).collect()).collect();
    let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] + r[3] * r[3]).collect();
    let model = FittedModel::fit(
        &wdt_features::Dataset::new(schema.names().to_vec(), x, y),
        ModelKind::Gbdt,
        &FitConfig::default(),
    )
    .expect("fit");
    std::fs::write(dir.join("v1.json"), model.to_json()).expect("persist");
    let offline = FittedModel::from_json(&model.to_json()).expect("reload");
    (Arc::new(ModelRegistry::open(dir, schema).expect("open")), offline)
}

fn hot_swap_e2e(frontend: Frontend, name: &str) {
    let data = campaign();
    assert!(data.x.len() >= 100, "campaign too small: {}", data.x.len());
    let train = wdt_features::Dataset::new(data.names.clone(), data.x.clone(), data.y.clone());

    // Two genuinely different versions of the model.
    let mut cfg = FitConfig::default();
    cfg.gbdt.n_rounds = 40;
    let v1 = FittedModel::fit(&train, ModelKind::Gbdt, &cfg).expect("fit v1");
    cfg.gbdt.n_rounds = 90;
    let v2 = FittedModel::fit(&train, ModelKind::Gbdt, &cfg).expect("fit v2");
    // Offline references reloaded through the same persistence path the
    // server uses, so both sides see the identical artifact.
    let offline1 = FittedModel::from_json(&v1.to_json()).expect("reload v1");
    let offline2 = FittedModel::from_json(&v2.to_json()).expect("reload v2");

    let dir = std::env::temp_dir().join("wdt-serve-e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("model dir");
    std::fs::write(dir.join("v0001.json"), v1.to_json()).expect("persist v1");

    let registry = Arc::new(ModelRegistry::open(&dir, ServeSchema::prediction()).expect("open"));
    let server = AnyServer::start(registry, ServeConfig::default(), frontend).expect("start");
    let names: Vec<String> = server.registry().schema().names().to_vec();
    let rows: Vec<Vec<f64>> = data.x.iter().take(96).cloned().collect();

    // Phase 1: concurrent clients; every answer bitwise matches offline v1.
    std::thread::scope(|s| {
        for chunk in rows.chunks(12) {
            let names = &names;
            let offline1 = &offline1;
            let addr = server.addr();
            s.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect");
                for row in chunk {
                    let (version, rate) = predict_one(&mut client, names, row);
                    assert_eq!(version, "v0001");
                    assert_eq!(
                        rate.to_bits(),
                        offline1.predict_row(row).to_bits(),
                        "served != offline for {row:?}"
                    );
                }
            });
        }
    });

    // Phase 2: hot-swap while clients hammer the service. Zero requests
    // may fail; every answer must match the offline model of whichever
    // version it reports.
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..4)
            .map(|t| {
                let names = &names;
                let rows = &rows;
                let stop = &stop;
                let (offline1, offline2) = (&offline1, &offline2);
                let addr = server.addr();
                s.spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("connect");
                    let mut n = 0usize;
                    let mut saw_v2 = false;
                    while !stop.load(Ordering::Relaxed) {
                        let row = &rows[(t * 31 + n * 7) % rows.len()];
                        let (version, rate) = predict_one(&mut client, names, row);
                        let offline = match version.as_str() {
                            "v0001" => offline1,
                            "v0002" => {
                                saw_v2 = true;
                                offline2
                            }
                            other => panic!("unexpected version {other}"),
                        };
                        assert_eq!(
                            rate.to_bits(),
                            offline.predict_row(row).to_bits(),
                            "served != offline {version} for {row:?}"
                        );
                        n += 1;
                    }
                    (n, saw_v2)
                })
            })
            .collect();

        std::thread::sleep(Duration::from_millis(100));
        std::fs::write(dir.join("v0002.json"), v2.to_json()).expect("persist v2");
        let mut admin = HttpClient::connect(server.addr()).expect("connect admin");
        let (status, body) = admin.post("/reload", "").expect("reload");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("v0002"), "{body}");
        std::thread::sleep(Duration::from_millis(100));
        stop.store(true, Ordering::Relaxed);

        let mut total = 0usize;
        let mut any_v2 = false;
        for w in workers {
            let (n, saw_v2) = w.join().expect("worker");
            assert!(n > 0, "worker made no predictions");
            total += n;
            any_v2 |= saw_v2;
        }
        assert!(total >= 8, "too little traffic to exercise the swap: {total}");
        assert!(any_v2, "no request observed the swapped-in model");
    });

    // After the swap, a fresh request serves v2 exactly.
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    let (version, rate) = predict_one(&mut client, &names, &rows[0]);
    assert_eq!(version, "v0002");
    assert_eq!(rate.to_bits(), offline2.predict_row(&rows[0]).to_bits());

    // Metrics reflect the traffic and the service drains cleanly.
    let (status, body) = client.get("/metrics").expect("metrics");
    assert_eq!(status, 200);
    let m = JsonValue::parse(&body).expect("metrics json");
    assert!(m.field("predictions").unwrap().as_usize().unwrap() >= 96);
    assert_eq!(m.field("version").unwrap().as_str().unwrap(), "v0002");
    drop(client);
    server.shutdown();
}

#[test]
fn concurrent_serving_is_bitwise_faithful_across_hot_swap() {
    hot_swap_e2e(Frontend::Threaded, "hot-swap-threaded");
}

#[test]
fn concurrent_serving_is_bitwise_faithful_across_hot_swap_event_loop() {
    hot_swap_e2e(Frontend::EventLoop, "hot-swap-eventloop");
}

/// A client that trickles its request a few bytes at a time, straddling
/// many idle-timeout ticks, must be served normally: slowness inside the
/// request deadline is not an error.
fn slow_but_live_writer_is_served(frontend: Frontend, name: &str) {
    let (registry, offline) = quick_registry(name);
    let server = AnyServer::start(registry, ServeConfig::default(), frontend).expect("start");
    let names = server.registry().schema().names().to_vec();
    let row: Vec<f64> = (0..names.len()).map(|i| (i % 7) as f64).collect();
    let body = body_for(&names, &row);
    let req = format!(
        "POST /predict HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
        body.len(),
        body
    );

    let mut s = TcpStream::connect(server.addr()).expect("connect");
    // Spread the request across ~0.8 s: many 200 ms ticks elapse between
    // first byte and last, all inside the 5 s default deadline.
    let bytes = req.as_bytes();
    let step = bytes.len().div_ceil(10);
    for chunk in bytes.chunks(step) {
        s.write_all(chunk).expect("trickle");
        s.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(80));
    }
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("response");
    assert!(resp.starts_with("HTTP/1.1 200"), "slow-but-live client was dropped: {resp}");
    let json = resp.split("\r\n\r\n").nth(1).expect("body");
    let rate = JsonValue::parse(json).unwrap().field("rate").unwrap().as_f64().unwrap();
    assert_eq!(rate.to_bits(), offline.predict_row(&row).to_bits(), "served != offline");
    server.shutdown();
}

#[test]
fn slow_but_live_writer_is_served_threaded() {
    slow_but_live_writer_is_served(Frontend::Threaded, "slow-live-threaded");
}

#[test]
fn slow_but_live_writer_is_served_event_loop() {
    slow_but_live_writer_is_served(Frontend::EventLoop, "slow-live-eventloop");
}

/// A client that starts a request and then stalls past the request
/// deadline is answered 408 and disconnected — and the stall must not
/// take a worker hostage: a concurrent healthy client stays served.
fn stalled_writer_gets_408(frontend: Frontend, name: &str) {
    let (registry, _) = quick_registry(name);
    let cfg = ServeConfig { request_deadline: Duration::from_millis(600), ..Default::default() };
    let server = AnyServer::start(registry, cfg, frontend).expect("start");

    let mut stalled = TcpStream::connect(server.addr()).expect("connect");
    stalled.write_all(b"GET /healthz HTTP/1.1\r\nConn").expect("partial header");
    stalled.flush().expect("flush");

    // While the stalled connection ages toward its deadline, a healthy
    // client on the same server is unaffected.
    let mut healthy = HttpClient::connect(server.addr()).expect("connect healthy");
    let (status, _) = healthy.get("/healthz").expect("healthy request");
    assert_eq!(status, 200);

    stalled.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut resp = String::new();
    stalled.read_to_string(&mut resp).expect("408 response");
    assert!(resp.starts_with("HTTP/1.1 408"), "expected 408 for stalled request: {resp}");

    // The 408 is an answered response: counted once, never exceeding the
    // request counter.
    let (_, body) = healthy.get("/metrics").expect("metrics");
    let m = JsonValue::parse(&body).expect("metrics json");
    let requests = m.field("requests").unwrap().as_usize().unwrap();
    let errors = m.field("errors").unwrap().as_usize().unwrap();
    let shed = m.field("shed").unwrap().as_usize().unwrap();
    assert!(errors >= 1, "the 408 must be counted as an error: {body}");
    assert!(errors + shed <= requests, "error rate exceeds request rate: {body}");
    server.shutdown();
}

#[test]
fn stalled_writer_gets_408_threaded() {
    stalled_writer_gets_408(Frontend::Threaded, "stalled-threaded");
}

#[test]
fn stalled_writer_gets_408_event_loop() {
    stalled_writer_gets_408(Frontend::EventLoop, "stalled-eventloop");
}

/// Pipelined bursts are answered strictly in order with bitwise parity:
/// one `send_many` burst per connection exercises the coalesced-write
/// path (the event loop renders every ready response into one output
/// buffer and drains it with a single `writev` per wakeup).
fn pipelined_burst_parity(frontend: Frontend, name: &str) {
    let (registry, offline) = quick_registry(name);
    let server = AnyServer::start(registry, ServeConfig::default(), frontend).expect("start");
    let names = server.registry().schema().names().to_vec();
    let rows: Vec<Vec<f64>> =
        (0..24).map(|i| (0..names.len()).map(|j| ((i * 3 + j) % 13) as f64).collect()).collect();
    let bodies: Vec<String> = rows.iter().map(|r| body_for(&names, r)).collect();
    let refs: Vec<&str> = bodies.iter().map(|b| b.as_str()).collect();
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    for _ in 0..3 {
        client.send_many("POST", "/predict", &refs).expect("burst");
        for row in &rows {
            let (status, body) = client.read_response().expect("response");
            assert_eq!(status, 200, "{body}");
            let rate = JsonValue::parse(&body).unwrap().field("rate").unwrap().as_f64().unwrap();
            assert_eq!(
                rate.to_bits(),
                offline.predict_row(row).to_bits(),
                "pipelined response out of order or diverged for {row:?}"
            );
        }
    }
    server.shutdown();
}

#[test]
fn pipelined_burst_parity_threaded() {
    pipelined_burst_parity(Frontend::Threaded, "pipeline-threaded");
}

#[test]
fn pipelined_burst_parity_event_loop() {
    pipelined_burst_parity(Frontend::EventLoop, "pipeline-eventloop");
}

/// `/explain` is the explanation plane's wire contract: per-feature
/// attributions whose fold `bias + Σ contributions` reconstructs the
/// served prediction **bitwise**, agreeing with `/predict` on the same
/// row and with the offline model attribution-for-attribution — and the
/// contract survives a hot-swap. `/alerts` and `/metrics.prom` answer on
/// the same connection.
fn explain_parity_and_alerts(frontend: Frontend, name: &str) {
    let (registry, offline) = quick_registry(name);
    let dir = registry.dir().to_path_buf();
    let server = AnyServer::start(registry, ServeConfig::default(), frontend).expect("start");
    let names = server.registry().schema().names().to_vec();
    let mut client = HttpClient::connect(server.addr()).expect("connect");

    let check_row = |client: &mut HttpClient, row: &[f64], want_version: &str| {
        let (version, rate) = predict_one(client, &names, row);
        assert_eq!(version, want_version);
        let (status, body) = client.post("/explain", &body_for(&names, row)).expect("explain");
        assert_eq!(status, 200, "{body}");
        let v = JsonValue::parse(&body).expect("explain json");
        assert_eq!(v.field("version").unwrap().as_str().unwrap(), want_version);
        let pred = v.field("prediction").unwrap().as_f64().unwrap();
        assert_eq!(pred.to_bits(), rate.to_bits(), "explain != predict for {row:?}");
        let bias = v.field("bias").unwrap().as_f64().unwrap();
        let contribs = v.field("contributions").unwrap().as_f64_vec().unwrap();
        let folded = contribs.iter().fold(bias, |acc, &c| acc + c);
        assert_eq!(folded.to_bits(), pred.to_bits(), "attributions do not fold to prediction");
        // The explained features are the model's kept columns, and the
        // offline twin agrees attribution-for-attribution.
        let features = v.field("features").unwrap().as_string_vec().unwrap();
        assert_eq!(features, offline.feature_names());
        let (obias, opred, ocontribs) = offline.explain_row(row);
        assert_eq!(opred.to_bits(), pred.to_bits(), "offline prediction diverged");
        assert_eq!(obias.to_bits(), bias.to_bits(), "offline bias diverged");
        assert_eq!(contribs.len(), ocontribs.len());
        for (i, (&c, &o)) in contribs.iter().zip(&ocontribs).enumerate() {
            assert_eq!(c.to_bits(), o.to_bits(), "contribution {i} diverged");
        }
        let top = v.field("top").unwrap().as_arr().unwrap().to_vec();
        assert_eq!(top.len(), 5.min(contribs.len()), "default top-k is 5");
    };

    let rows: Vec<Vec<f64>> = (0..12)
        .map(|i| (0..names.len()).map(|j| ((i * 3 + j) % 9) as f64 + 0.25).collect())
        .collect();
    for row in &rows {
        check_row(&mut client, row, "v1");
    }

    // Hot-swap to a v2 artifact; the attribution contract must follow
    // the new version without a beat skipped.
    std::fs::copy(dir.join("v1.json"), dir.join("v2.json")).expect("persist v2");
    let (status, body) = client.post("/reload", "").expect("reload");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("v2"), "{body}");
    for row in rows.iter().take(4) {
        check_row(&mut client, row, "v2");
    }

    // The alert ring answers with its document shape (the ring is
    // process-global, so other tests may already have raised into it).
    let (status, body) = client.get("/alerts").expect("alerts");
    assert_eq!(status, 200, "{body}");
    let a = JsonValue::parse(&body).expect("alerts json");
    a.field("alerts").unwrap().as_arr().expect("alerts array");
    a.field("raised").unwrap().as_usize().expect("raised count");

    // Prometheus exposition is reachable over the wire.
    let (status, body) = client.get("/metrics.prom").expect("prom");
    assert_eq!(status, 200);
    assert!(body.contains("# TYPE serve_requests counter"), "{body}");
    server.shutdown();
}

#[test]
fn explain_parity_and_alerts_threaded() {
    explain_parity_and_alerts(Frontend::Threaded, "explain-threaded");
}

#[test]
fn explain_parity_and_alerts_event_loop() {
    explain_parity_and_alerts(Frontend::EventLoop, "explain-eventloop");
}

/// Sharded accept: with `SO_REUSEPORT` available (Linux) every acceptor
/// shard owns its own listener on the shared port, and traffic over many
/// fresh connections — which the kernel hashes across the shard
/// listeners — stays bitwise-faithful.
#[test]
fn reuseport_sharded_accept_serves_across_shards() {
    let (registry, offline) = quick_registry("reuseport-smoke");
    let cfg = ServeConfig { acceptors: 4, ..Default::default() };
    let server = wdt_serve::EventLoopServer::start(registry, cfg).expect("start");
    #[cfg(target_os = "linux")]
    assert!(server.reuseport(), "Linux must get per-shard SO_REUSEPORT listeners");
    let names = server.registry().schema().names().to_vec();
    for i in 0..32 {
        let row: Vec<f64> = (0..names.len()).map(|j| ((i * 5 + j) % 11) as f64).collect();
        let mut client = HttpClient::connect(server.addr()).expect("connect");
        let (_, rate) = predict_one(&mut client, &names, &row);
        assert_eq!(rate.to_bits(), offline.predict_row(&row).to_bits(), "shard diverged");
    }
    server.shutdown();
}
