//! End-to-end serving: simulate → train → persist → serve over HTTP →
//! predict concurrently → hot-swap to a second model version.
//!
//! The contract under test is the serving subsystem's core promise:
//! predictions served over the wire are **bitwise identical** to offline
//! `FittedModel::predict` on the same rows — under concurrent load, and
//! across an atomic hot-swap that must not fail a single request.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use wdt::prelude::*;
use wdt_model::build_dataset;
use wdt_serve::{HttpClient, ModelRegistry, ServeConfig, ServeSchema, Server};
use wdt_types::JsonValue;

/// A small simulated campaign, reduced to the prediction-time dataset.
fn campaign() -> wdt_features::Dataset {
    let w = WorkloadSpec {
        fleet: FleetSpec { sites: 10, extra_servers: 2, personal: 4 },
        heavy_edges: 3,
        heavy_sessions_per_day: 12.0,
        heavy_session_len: 4.0,
        sparse_edges: 15,
        days: 3.0,
    }
    .generate(&SeedSeq::new(23));
    let mut sim = Simulator::new(w.endpoints, SimConfig::default(), &SeedSeq::new(23));
    sim.add_default_background(3, 0.3);
    for r in w.requests {
        sim.submit(r);
    }
    let records = sim.run().records;
    build_dataset(&extract_features(&records), false)
}

/// Render one schema-ordered row as a `/predict` body.
fn body_for(names: &[String], row: &[f64]) -> String {
    JsonValue::Obj(names.iter().cloned().zip(row.iter().map(|&v| JsonValue::Num(v))).collect())
        .to_string()
}

/// POST one row and return (version, rate) after asserting success.
fn predict_one(client: &mut HttpClient, names: &[String], row: &[f64]) -> (String, f64) {
    let (status, body) = client.post("/predict", &body_for(names, row)).expect("request");
    assert_eq!(status, 200, "predict failed: {body}");
    let v = JsonValue::parse(&body).expect("response json");
    (
        v.field("version").unwrap().as_str().unwrap().to_string(),
        v.field("rate").unwrap().as_f64().unwrap(),
    )
}

#[test]
fn concurrent_serving_is_bitwise_faithful_across_hot_swap() {
    let data = campaign();
    assert!(data.x.len() >= 100, "campaign too small: {}", data.x.len());
    let train = wdt_features::Dataset::new(data.names.clone(), data.x.clone(), data.y.clone());

    // Two genuinely different versions of the model.
    let mut cfg = FitConfig::default();
    cfg.gbdt.n_rounds = 40;
    let v1 = FittedModel::fit(&train, ModelKind::Gbdt, &cfg).expect("fit v1");
    cfg.gbdt.n_rounds = 90;
    let v2 = FittedModel::fit(&train, ModelKind::Gbdt, &cfg).expect("fit v2");
    // Offline references reloaded through the same persistence path the
    // server uses, so both sides see the identical artifact.
    let offline1 = FittedModel::from_json(&v1.to_json()).expect("reload v1");
    let offline2 = FittedModel::from_json(&v2.to_json()).expect("reload v2");

    let dir = std::env::temp_dir().join("wdt-serve-e2e");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("model dir");
    std::fs::write(dir.join("v0001.json"), v1.to_json()).expect("persist v1");

    let registry = Arc::new(ModelRegistry::open(&dir, ServeSchema::prediction()).expect("open"));
    let server = Server::start(registry, ServeConfig::default()).expect("start");
    let names: Vec<String> = server.registry().schema().names().to_vec();
    let rows: Vec<Vec<f64>> = data.x.iter().take(96).cloned().collect();

    // Phase 1: concurrent clients; every answer bitwise matches offline v1.
    std::thread::scope(|s| {
        for chunk in rows.chunks(12) {
            let names = &names;
            let offline1 = &offline1;
            let addr = server.addr();
            s.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect");
                for row in chunk {
                    let (version, rate) = predict_one(&mut client, names, row);
                    assert_eq!(version, "v0001");
                    assert_eq!(
                        rate.to_bits(),
                        offline1.predict_row(row).to_bits(),
                        "served != offline for {row:?}"
                    );
                }
            });
        }
    });

    // Phase 2: hot-swap while clients hammer the service. Zero requests
    // may fail; every answer must match the offline model of whichever
    // version it reports.
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..4)
            .map(|t| {
                let names = &names;
                let rows = &rows;
                let stop = &stop;
                let (offline1, offline2) = (&offline1, &offline2);
                let addr = server.addr();
                s.spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("connect");
                    let mut n = 0usize;
                    let mut saw_v2 = false;
                    while !stop.load(Ordering::Relaxed) {
                        let row = &rows[(t * 31 + n * 7) % rows.len()];
                        let (version, rate) = predict_one(&mut client, names, row);
                        let offline = match version.as_str() {
                            "v0001" => offline1,
                            "v0002" => {
                                saw_v2 = true;
                                offline2
                            }
                            other => panic!("unexpected version {other}"),
                        };
                        assert_eq!(
                            rate.to_bits(),
                            offline.predict_row(row).to_bits(),
                            "served != offline {version} for {row:?}"
                        );
                        n += 1;
                    }
                    (n, saw_v2)
                })
            })
            .collect();

        std::thread::sleep(Duration::from_millis(100));
        std::fs::write(dir.join("v0002.json"), v2.to_json()).expect("persist v2");
        let mut admin = HttpClient::connect(server.addr()).expect("connect admin");
        let (status, body) = admin.post("/reload", "").expect("reload");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("v0002"), "{body}");
        std::thread::sleep(Duration::from_millis(100));
        stop.store(true, Ordering::Relaxed);

        let mut total = 0usize;
        let mut any_v2 = false;
        for w in workers {
            let (n, saw_v2) = w.join().expect("worker");
            assert!(n > 0, "worker made no predictions");
            total += n;
            any_v2 |= saw_v2;
        }
        assert!(total >= 8, "too little traffic to exercise the swap: {total}");
        assert!(any_v2, "no request observed the swapped-in model");
    });

    // After the swap, a fresh request serves v2 exactly.
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    let (version, rate) = predict_one(&mut client, &names, &rows[0]);
    assert_eq!(version, "v0002");
    assert_eq!(rate.to_bits(), offline2.predict_row(&rows[0]).to_bits());

    // Metrics reflect the traffic and the service drains cleanly.
    let (status, body) = client.get("/metrics").expect("metrics");
    assert_eq!(status, 200);
    let m = JsonValue::parse(&body).expect("metrics json");
    assert!(m.field("predictions").unwrap().as_usize().unwrap() >= 96);
    assert_eq!(m.field("version").unwrap().as_str().unwrap(), "v0002");
    server.shutdown();
}
