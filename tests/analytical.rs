//! Integration tests of the analytical bound (Eq. 1) on the simulated
//! ESnet testbed — the paper's §3.

use wdt::sim::instruments::{measure_edge_maxima, perfsonar_probe};
use wdt::sim::{esnet_testbed, EsnetSite};
use wdt_types::SeedSeq;

#[test]
fn equation_one_holds_on_every_testbed_edge() {
    let testbed = esnet_testbed();
    let seed = SeedSeq::new(1);
    for from in EsnetSite::ALL {
        for to in EsnetSite::ALL {
            if from == to {
                continue;
            }
            let m = measure_edge_maxima(
                &testbed,
                from.endpoint(),
                to.endpoint(),
                3,
                &seed.subseq(&format!("{}{}", from.name(), to.name())),
            );
            assert!(
                m.r_max.as_f64() <= m.bound().as_f64() * 1.08,
                "{}->{}: Rmax {} exceeds bound {}",
                from.name(),
                to.name(),
                m.r_max,
                m.bound()
            );
            // Memory-to-memory can't be slower than touching disks too.
            assert!(m.mm_max.as_f64() >= m.r_max.as_f64() * 0.95);
        }
    }
}

#[test]
fn cern_edges_pay_for_distance() {
    // Transatlantic RTT should make CERN's network ceiling visibly lower
    // than the domestic ones.
    let testbed = esnet_testbed();
    let seed = SeedSeq::new(2);
    let domestic = measure_edge_maxima(
        &testbed,
        EsnetSite::Anl.endpoint(),
        EsnetSite::Bnl.endpoint(),
        3,
        &seed.subseq("d"),
    );
    let transatlantic = measure_edge_maxima(
        &testbed,
        EsnetSite::Cern.endpoint(),
        EsnetSite::Bnl.endpoint(),
        3,
        &seed.subseq("t"),
    );
    assert!(
        transatlantic.mm_max.as_f64() <= domestic.mm_max.as_f64(),
        "CERN MM {} should not beat domestic MM {}",
        transatlantic.mm_max,
        domestic.mm_max
    );
}

#[test]
fn perfsonar_probe_agrees_with_full_campaign() {
    let testbed = esnet_testbed();
    let probe = perfsonar_probe(
        &testbed,
        EsnetSite::Anl.endpoint(),
        EsnetSite::Lbl.endpoint(),
        &SeedSeq::new(3),
    );
    let campaign = measure_edge_maxima(
        &testbed,
        EsnetSite::Anl.endpoint(),
        EsnetSite::Lbl.endpoint(),
        5,
        &SeedSeq::new(3),
    );
    let ratio = probe.as_f64() / campaign.mm_max.as_f64();
    assert!((0.75..=1.1).contains(&ratio), "probe/campaign ratio {ratio}");
}
