//! Observability must never change what the simulator computes.
//!
//! One `#[test]` on purpose: the tracing gate (`wdt_obs::set_enabled`)
//! is process-global, so interleaving with other tests in this binary
//! would make the "disabled" and "enabled" runs racy. Sequencing the
//! whole argument in a single test keeps both runs deterministic.
//!
//! The argument has three parts:
//!
//! 1. **Disabled path is inert** — with instrumentation off (the
//!    default), the check campaign's digest matches the committed golden
//!    snapshot bit for bit, i.e. merely linking `wdt-obs` into the
//!    engine changes nothing.
//! 2. **Enabled path is inert too** — with spans and counters recording,
//!    the transfer log and every deterministic `SimStats` counter are
//!    bitwise identical to the disabled run. Instrumentation reads
//!    clocks; it never feeds back into simulation state.
//! 3. **The trace is real** — the flight recorder captured engine spans
//!    and the Chrome-trace export passes the structural validator
//!    (parseable, monotone per track, properly nested).

use wdt_bench::CampaignSpec;
use wdt_check::TraceDigest;

/// Must mirror the `wdt check` defaults in `crates/cli/src/commands.rs`.
fn check_spec() -> CampaignSpec {
    CampaignSpec { seed: 2017, days: 2.0, heavy_edges: 6, sparse_edges: 30, ..Default::default() }
}

#[test]
fn instrumentation_is_bit_transparent_and_traces_validate() {
    let committed = TraceDigest::from_text(
        &std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("tests/golden/check-campaign.digest"),
        )
        .expect("committed golden digest"),
    )
    .expect("golden digest parses");

    // Part 1: disabled instrumentation — zero drift from the seed digest.
    assert!(!wdt_obs::enabled(), "tracing must default to off");
    let off = check_spec().simulate();
    let digest = TraceDigest::from_records(&off.records);
    assert_eq!(
        committed.hash(),
        digest.hash(),
        "disabled-instrumentation campaign drifted from the golden digest:\n{}",
        committed.diff(&digest).join("\n")
    );

    // Part 2: enabled instrumentation — bitwise-identical results. Detail
    // level on purpose: per-event spans are the heaviest instrumentation,
    // so this is the strongest form of the transparency claim.
    wdt_obs::clear();
    wdt_obs::set_detail(true);
    let on = check_spec().simulate();
    wdt_obs::set_enabled(false);
    assert_eq!(off.records, on.records, "tracing changed the transfer log");
    assert_eq!(off.stats.events, on.stats.events);
    assert_eq!(off.stats.reallocations, on.stats.reallocations);
    assert_eq!(off.stats.max_queue_depth, on.stats.max_queue_depth);
    assert_eq!(off.stats.scratch_reuses, on.stats.scratch_reuses);
    assert_eq!(off.stats.oracle_invocations, on.stats.oracle_invocations);
    assert_eq!(off.stats.waiting_drains, on.stats.waiting_drains);

    // Part 3: the recorded trace is non-trivial and structurally valid.
    let snapshot = wdt_obs::snapshot();
    let events: usize = snapshot.iter().map(|t| t.events.len()).sum();
    assert!(events > 0, "enabled campaign recorded no events");
    let text = wdt_obs::chrome_trace(&snapshot).to_string();
    let summary = wdt_obs::validate_chrome_trace(&text).expect("exported trace validates");
    assert!(summary.spans > 0, "no spans in exported trace: {summary:?}");
    assert!(summary.tracks >= 2, "expected wall + sim clock tracks: {summary:?}");
    wdt_obs::clear();
}
