//! Observability must never change what the simulator computes.
//!
//! One `#[test]` on purpose: the tracing gate (`wdt_obs::set_enabled`)
//! is process-global, so interleaving with other tests in this binary
//! would make the "disabled" and "enabled" runs racy. Sequencing the
//! whole argument in a single test keeps both runs deterministic.
//!
//! The argument has three parts:
//!
//! 1. **Disabled path is inert** — with instrumentation off (the
//!    default), the check campaign's digest matches the committed golden
//!    snapshot bit for bit, i.e. merely linking `wdt-obs` into the
//!    engine changes nothing.
//! 2. **Enabled path is inert too** — with spans and counters recording,
//!    the transfer log and every deterministic `SimStats` counter are
//!    bitwise identical to the disabled run. Instrumentation reads
//!    clocks; it never feeds back into simulation state.
//! 3. **The trace is real** — the flight recorder captured engine spans
//!    and the Chrome-trace export passes the structural validator
//!    (parseable, monotone per track, properly nested).
//! 4. **The alert plane is observe-only** — a capacity-window scenario
//!    raises `CapacityChange` alerts at every `ModChange` boundary and
//!    bumps the global alert counters, yet the run still matches its
//!    committed golden digest, and a rerun with the ring already
//!    populated is bit-identical (alert state never feeds back).
//! 5. **Attribution is exact end to end** — a GBDT trained on the alerted
//!    campaign explains every row such that `bias + Σ contributions`
//!    reconstructs `predict_row` bitwise.

use wdt_bench::{CampaignSpec, ScenarioCampaign};
use wdt_check::TraceDigest;
use wdt_features::extract_features;
use wdt_model::{build_dataset, FitConfig, FittedModel, ModelKind};

/// Must mirror the `wdt check` defaults in `crates/cli/src/commands.rs`.
fn check_spec() -> CampaignSpec {
    CampaignSpec { seed: 2017, days: 2.0, heavy_edges: 6, sparse_edges: 30, ..Default::default() }
}

#[test]
fn instrumentation_is_bit_transparent_and_traces_validate() {
    let committed = TraceDigest::from_text(
        &std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("tests/golden/check-campaign.digest"),
        )
        .expect("committed golden digest"),
    )
    .expect("golden digest parses");

    // Part 1: disabled instrumentation — zero drift from the seed digest.
    assert!(!wdt_obs::enabled(), "tracing must default to off");
    let off = check_spec().simulate();
    let digest = TraceDigest::from_records(&off.records);
    assert_eq!(
        committed.hash(),
        digest.hash(),
        "disabled-instrumentation campaign drifted from the golden digest:\n{}",
        committed.diff(&digest).join("\n")
    );

    // Part 2: enabled instrumentation — bitwise-identical results. Detail
    // level on purpose: per-event spans are the heaviest instrumentation,
    // so this is the strongest form of the transparency claim.
    wdt_obs::clear();
    wdt_obs::set_detail(true);
    let on = check_spec().simulate();
    wdt_obs::set_enabled(false);
    assert_eq!(off.records, on.records, "tracing changed the transfer log");
    assert_eq!(off.stats.events, on.stats.events);
    assert_eq!(off.stats.reallocations, on.stats.reallocations);
    assert_eq!(off.stats.max_queue_depth, on.stats.max_queue_depth);
    assert_eq!(off.stats.scratch_reuses, on.stats.scratch_reuses);
    assert_eq!(off.stats.oracle_invocations, on.stats.oracle_invocations);
    assert_eq!(off.stats.waiting_drains, on.stats.waiting_drains);

    // Part 3: the recorded trace is non-trivial and structurally valid.
    let snapshot = wdt_obs::snapshot();
    let events: usize = snapshot.iter().map(|t| t.events.len()).sum();
    assert!(events > 0, "enabled campaign recorded no events");
    let text = wdt_obs::chrome_trace(&snapshot).to_string();
    let summary = wdt_obs::validate_chrome_trace(&text).expect("exported trace validates");
    assert!(summary.spans > 0, "no spans in exported trace: {summary:?}");
    assert!(summary.tracks >= 2, "expected wall + sim clock tracks: {summary:?}");
    wdt_obs::clear();

    // Part 4: the alert plane is observe-only. `degraded-backbone` has a
    // capacity schedule, so every `ModChange` boundary raises a
    // `CapacityChange` alert into the global ring — and the run must
    // still match its committed golden digest exactly.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let sink = wdt_obs::AlertSink::global();
    sink.clear();
    let counter = wdt_obs::Registry::global().counter("alerts.capacity_change");
    let raised_before = counter.get();
    let scen = ScenarioCampaign::from_file(&root.join("scenarios/degraded-backbone.json"))
        .expect("bundled capacity scenario");
    let golden = TraceDigest::from_text(
        &std::fs::read_to_string(root.join("tests/golden/scenarios/degraded-backbone.digest"))
            .expect("committed scenario digest"),
    )
    .expect("scenario digest parses");
    let alerted = scen.simulate();
    let digest1 = TraceDigest::from_records(&alerted.records);
    assert_eq!(
        golden.hash(),
        digest1.hash(),
        "alert-raising campaign drifted from its golden digest:\n{}",
        golden.diff(&digest1).join("\n")
    );
    let snap = sink.snapshot();
    assert!(
        snap.iter().any(|a| a.kind == wdt_obs::AlertKind::CapacityChange),
        "capacity scenario raised no CapacityChange alert: {snap:?}"
    );
    assert!(counter.get() > raised_before, "alerts.capacity_change counter did not move");
    // Rerun with the ring already populated: alert state never feeds
    // back into simulation state.
    let rerun = scen.simulate();
    assert_eq!(
        digest1.hash(),
        TraceDigest::from_records(&rerun.records).hash(),
        "rerun with a populated alert ring diverged"
    );
    sink.clear();

    // Part 5: attribution is exact on a campaign-trained model.
    let data = build_dataset(&extract_features(&alerted.records), false);
    let model =
        FittedModel::fit(&data, ModelKind::Gbdt, &FitConfig::default()).expect("fit on campaign");
    for row in data.x.iter().take(64) {
        let (bias, pred, contribs) = model.explain_row(row);
        assert_eq!(
            pred.to_bits(),
            model.predict_row(row).to_bits(),
            "explain prediction diverged from predict_row"
        );
        let folded = contribs.iter().fold(bias, |acc, &c| acc + c);
        assert_eq!(folded.to_bits(), pred.to_bits(), "attributions do not fold to prediction");
    }
}
