//! End-to-end integration: workload → simulator → features → models.

use wdt::prelude::*;
use wdt_model::run_per_edge;

fn small_world() -> (EndpointCatalog, Vec<TransferRequest>) {
    let w = WorkloadSpec {
        fleet: FleetSpec { sites: 14, extra_servers: 4, personal: 6 },
        heavy_edges: 4,
        heavy_sessions_per_day: 18.0,
        heavy_session_len: 5.0,
        sparse_edges: 30,
        days: 6.0,
        mix: ArrivalMix::default(),
    }
    .generate(&SeedSeq::new(11));
    (w.endpoints, w.requests)
}

fn simulate_once() -> Vec<TransferRecord> {
    let (endpoints, requests) = small_world();
    let mut sim = Simulator::new(endpoints, SimConfig::default(), &SeedSeq::new(11));
    sim.add_default_background(4, 0.4);
    for r in requests {
        sim.submit(r);
    }
    sim.run().records
}

/// The shared log, simulated once per test binary.
fn simulate() -> &'static [TransferRecord] {
    use std::sync::OnceLock;
    static LOG: OnceLock<Vec<TransferRecord>> = OnceLock::new();
    LOG.get_or_init(simulate_once)
}

#[test]
fn full_pipeline_trains_usable_models() {
    let records = simulate();
    assert!(records.len() > 1000, "got {} records", records.len());
    let features = extract_features(records);
    assert_eq!(features.len(), records.len());

    let mut cfg = PerEdgeConfig { min_transfers: 150, ..Default::default() };
    cfg.fit.gbdt.n_rounds = 60;
    let exps = run_per_edge(&features, &cfg);
    assert!(!exps.is_empty(), "no edge qualified");
    for e in &exps {
        assert!(e.xgb.mdape.is_finite());
        assert!(e.xgb.mdape < 40.0, "edge {} XGB MdAPE {}", e.edge, e.xgb.mdape);
        // The paper's core claim, per edge: the nonlinear model is at least
        // competitive with the linear one (and usually better).
        assert!(
            e.xgb.mdape < e.lr.mdape * 1.25,
            "edge {}: XGB {} vs LR {}",
            e.edge,
            e.xgb.mdape,
            e.lr.mdape
        );
    }
}

/// The histogram engine must reproduce the paper-facing results of the
/// exact engine on the same simulated campaign: per-edge prediction error
/// within one MdAPE point, and the same dominant features in the
/// Figure 12 importance ranking.
#[test]
fn histogram_engine_matches_exact_on_paper_results() {
    let records = simulate();
    let features = extract_features(records);
    let mut cfg = PerEdgeConfig { min_transfers: 150, ..Default::default() };
    cfg.fit.gbdt.n_rounds = 60;
    let hist = run_per_edge(&features, &cfg);
    let mut exact_cfg = cfg.clone();
    exact_cfg.fit.gbdt.split = SplitStrategy::Exact;
    let exact = run_per_edge(&features, &exact_cfg);

    assert!(!hist.is_empty(), "no edge qualified");
    assert_eq!(hist.len(), exact.len());
    for (h, e) in hist.iter().zip(&exact) {
        assert_eq!(h.edge, e.edge);
        assert!(
            (h.xgb.mdape - e.xgb.mdape).abs() < 1.0,
            "edge {}: histogram MdAPE {} vs exact {}",
            h.edge,
            h.xgb.mdape,
            e.xgb.mdape
        );
        // Figure 12: the top-5 most important features must agree as a
        // set, and the dominant feature must be identical. (Exact order
        // below the top spot can legitimately swap on near-tie gains.)
        let top5 = |exp: &wdt_model::EdgeExperiment| -> Vec<String> {
            let mut v: Vec<(String, f64)> = exp
                .xgb_importance
                .iter()
                .filter_map(|(n, o)| o.map(|val| (n.clone(), val)))
                .collect();
            v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite importance"));
            v.truncate(5);
            v.into_iter().map(|(n, _)| n).collect()
        };
        let (th, te) = (top5(h), top5(e));
        assert_eq!(th[0], te[0], "edge {}: dominant feature differs", h.edge);
        let sh: std::collections::BTreeSet<&String> = th.iter().collect();
        let se: std::collections::BTreeSet<&String> = te.iter().collect();
        assert_eq!(sh, se, "edge {}: top-5 importance sets differ", h.edge);
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let a = simulate_once();
    let b = simulate();
    assert_eq!(a.as_slice(), b);
}

#[test]
fn simulation_conserves_bytes_and_orders_time() {
    let (endpoints, requests) = small_world();
    let want: f64 = requests.iter().map(|r| r.bytes.as_f64()).sum();
    let n = requests.len();
    let mut sim = Simulator::new(endpoints, SimConfig::default(), &SeedSeq::new(11));
    for r in requests {
        sim.submit(r);
    }
    let out = sim.run();
    assert_eq!(out.records.len(), n);
    let got: f64 = out.records.iter().map(|r| r.bytes.as_f64()).sum();
    assert!((got - want).abs() < 1.0);
    for r in &out.records {
        assert!(r.end > r.start);
        assert!(r.rate().as_f64() > 0.0);
    }
}

#[test]
fn relative_external_load_is_bounded() {
    let records = simulate();
    let features = extract_features(records);
    for f in &features {
        let l = f.relative_external_load();
        assert!((0.0..=1.0).contains(&l), "load {l} out of range");
        for v in [f.k_sout, f.k_din, f.k_sin, f.k_dout, f.g_src, f.g_dst, f.s_sout, f.s_din] {
            assert!(v >= 0.0 && v.is_finite());
        }
    }
}

#[test]
fn threshold_filter_monotone_in_sample_count() {
    let records = simulate();
    let features = extract_features(records);
    let mut prev = usize::MAX;
    for t in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let kept = threshold_filter(&features, t).len();
        assert!(kept <= prev, "threshold {t} kept {kept} > {prev}");
        prev = kept;
    }
    // Threshold 1.0 keeps at least the per-edge maxima.
    assert!(prev >= 1);
}
