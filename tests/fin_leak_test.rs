// Repro: peer FIN mid-request on the event-loop front end.
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use wdt_serve::{AnyServer, Frontend, ModelRegistry, ServeConfig, ServeSchema};

#[test]
fn fin_mid_request_then_shutdown() {
    let dir = std::env::temp_dir().join("wdt-fin-leak-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let schema = ServeSchema::prediction();
    let w = schema.width();
    let x: Vec<Vec<f64>> =
        (0..150).map(|i| (0..w).map(|j| ((i * (j + 2)) % 19) as f64).collect()).collect();
    let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] + r[3] * r[3]).collect();
    let model = wdt_model::FittedModel::fit(
        &wdt_features::Dataset::new(schema.names().to_vec(), x, y),
        wdt_model::ModelKind::Gbdt,
        &wdt_model::FitConfig::default(),
    )
    .unwrap();
    std::fs::write(dir.join("v1.json"), model.to_json()).unwrap();
    let registry = Arc::new(ModelRegistry::open(dir, schema).unwrap());
    let cfg = ServeConfig { request_deadline: Duration::from_millis(400), ..Default::default() };
    let server = AnyServer::start(registry, cfg, Frontend::EventLoop).unwrap();

    // Partial request, then close the socket entirely.
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\nConn").unwrap();
    s.flush().unwrap();
    std::thread::sleep(Duration::from_millis(300)); // let the shard read it
    drop(s); // FIN

    std::thread::sleep(Duration::from_millis(600)); // past the deadline

    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        server.shutdown();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("shutdown hung: FIN-mid-request connection never reaped");
}
