//! Bundled scenario library verification at the workspace root: every
//! scenario in `scenarios/` must reproduce its committed golden digest in
//! `tests/golden/scenarios/`, and the paper's Fig. 12 regime-robustness
//! claim — competing-load features stay in the top importance group — must
//! hold across distinct regimes. Refresh after an intentional change with:
//!
//! ```text
//! cargo run --release -p wdt-cli -- scenarios \
//!     --dir scenarios --golden-dir tests/golden/scenarios --refresh
//! ```

use std::path::{Path, PathBuf};
use wdt_bench::ScenarioCampaign;
use wdt_check::{check_records, TraceDigest};
use wdt_features::{extract_features, threshold_filter};
use wdt_model::{build_dataset, FitConfig, FittedModel, ModelKind};

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn bundled_scenarios() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(root().join("scenarios"))
        .expect("bundled scenarios/ directory")
        .filter_map(|e| {
            let p = e.expect("dir entry").path();
            (p.extension().is_some_and(|x| x == "json")).then_some(p)
        })
        .collect();
    files.sort();
    files
}

#[test]
fn bundled_scenarios_match_committed_golden_digests() {
    let files = bundled_scenarios();
    assert!(files.len() >= 6, "scenario library shrank: only {} bundled", files.len());
    let mut drifted = Vec::new();
    for file in &files {
        let camp = ScenarioCampaign::from_file(file).expect("bundled scenario is valid");
        let name = camp.spec().name.clone();
        let golden_path = root().join("tests/golden/scenarios").join(format!("{name}.digest"));
        let committed = TraceDigest::from_text(
            &std::fs::read_to_string(&golden_path)
                .unwrap_or_else(|e| panic!("missing golden for '{name}': {e}")),
        )
        .expect("golden digest parses and its hash verifies");
        let out = camp.simulate();
        assert!(check_records(&out.records).is_empty(), "'{name}': log invariants violated");
        let digest = TraceDigest::from_records(&out.records);
        let diff = committed.diff(&digest);
        if !diff.is_empty() {
            eprintln!("'{name}' drifted ({} difference(s)):", diff.len());
            for d in diff.iter().take(5) {
                eprintln!("  {d}");
            }
            drifted.push(name);
        }
    }
    assert!(
        drifted.is_empty(),
        "{} bundled scenario(s) drifted from their golden digests: {}. If intentional, \
         refresh with `cargo run --release -p wdt-cli -- scenarios --dir scenarios \
         --golden-dir tests/golden/scenarios --refresh` and commit.",
        drifted.len(),
        drifted.join(", ")
    );
}

#[test]
fn bundled_scenario_digests_are_distinct_regimes() {
    // Each scenario must actually change behavior (except the baseline,
    // which by design reproduces the standard campaign): no two bundled
    // digests may collide, or the "library" is padding.
    let mut hashes = std::collections::BTreeMap::new();
    for file in bundled_scenarios() {
        let camp = ScenarioCampaign::from_file(&file).expect("valid");
        let name = camp.spec().name.clone();
        let text = std::fs::read_to_string(
            root().join("tests/golden/scenarios").join(format!("{name}.digest")),
        )
        .expect("golden exists");
        let d = TraceDigest::from_text(&text).expect("parses");
        if let Some(prev) = hashes.insert(d.hash(), name.clone()) {
            panic!("scenarios '{prev}' and '{name}' share digest {:016x}", d.hash());
        }
    }
}

/// Fig. 12 regime robustness: train a GBDT on each of three very different
/// bundled regimes (reference diurnal, flash-crowd demand spike, throttled
/// cloud egress) and check that (a) held-out MdAPE stays within the bounds
/// recorded in EXPERIMENTS.md and (b) competing-load features (K*/S*/G*)
/// keep at least two seats in the top-5 importance group — the model keeps
/// attributing performance to *other traffic* no matter the regime.
#[test]
fn fig12_competing_load_features_stay_on_top_across_regimes() {
    let regimes = [("baseline-diurnal", 28.0), ("flash-crowd", 28.0), ("cloud-egress", 28.0)];
    for (name, mdape_bound) in regimes {
        let camp = ScenarioCampaign::from_file(&root().join(format!("scenarios/{name}.json")))
            .expect("bundled scenario");
        let out = camp.simulate();
        let features = extract_features(&out.records);
        let filtered = threshold_filter(&features, 0.5);
        assert!(filtered.len() >= 60, "'{name}': too few filtered transfers to model");
        let data = build_dataset(&filtered, false);
        let (train, test) = data.split(0.7, 7);
        let mut cfg = FitConfig::default();
        cfg.gbdt.n_rounds = 80;
        let model = FittedModel::fit(&train, ModelKind::Gbdt, &cfg).expect("fit");
        let eval = model.evaluate(&test);
        assert!(
            eval.mdape < mdape_bound,
            "'{name}': MdAPE {:.1}% exceeds the {mdape_bound}% bound in EXPERIMENTS.md",
            eval.mdape
        );
        let mut sig = model.significance();
        sig.sort_by(|a, b| b.1.total_cmp(&a.1));
        let top5: Vec<&str> = sig.iter().take(5).map(|(n, _)| n.as_str()).collect();
        let competing = top5
            .iter()
            .filter(|n| matches!(n.as_bytes().first(), Some(b'K' | b'S' | b'G')))
            .count();
        assert!(
            competing >= 2,
            "'{name}': only {competing} competing-load feature(s) in top-5 {top5:?}"
        );
    }
}
