//! Integration test of the §5.5.2 mechanism: features from a storage
//! monitor that *sees* hidden load must reduce prediction error.

use wdt::prelude::*;
use wdt_model::compare_with_lmt;
use wdt_sim::LmtMonitor;
use wdt_storage::LustreFs;

#[test]
fn storage_monitor_features_reduce_error() {
    let loc = SiteCatalog::by_name("NERSC").expect("site").location;
    let mut cat = EndpointCatalog::new();
    for (i, name) in ["a", "b"].iter().enumerate() {
        cat.push(Endpoint::server(
            EndpointId(i as u32),
            *name,
            "NERSC",
            loc,
            2,
            Rate::gbit(10.0),
            StorageSystem::facility(Rate::gbit(16.0), Rate::gbit(12.0)),
        ));
    }
    let seed = SeedSeq::new(5);
    let cfg = SimConfig { faults_enabled: false, flow_jitter: 0.01, ..SimConfig::default() };
    let mut sim = Simulator::new(cat, cfg, &seed);

    // Hidden write load at the destination, slow on/off.
    sim.add_background(BackgroundProcess {
        endpoint: EndpointId(1),
        kind: BgKind::DiskWrite,
        rate_when_on: Rate::mbps(700.0),
        mean_on_s: 1200.0,
        mean_off_s: 1200.0,
        on: false,
    });
    // Uniform test transfers.
    let n = 250u64;
    for i in 0..n {
        sim.submit(TransferRequest {
            id: TransferId(i),
            src: EndpointId(0),
            dst: EndpointId(1),
            submit: SimTime::seconds(i as f64 * 400.0),
            bytes: Bytes::gb(10.0),
            files: 32,
            dirs: 2,
            concurrency: 4,
            parallelism: 4,
            checksum: true,
        });
    }
    // Mild visible variation so the baseline has surviving features: a
    // second stream of occasional competing Globus transfers.
    for k in 0..40u64 {
        sim.submit(TransferRequest {
            id: TransferId(n + k),
            src: EndpointId(0),
            dst: EndpointId(1),
            submit: SimTime::seconds(k as f64 * 2500.0),
            bytes: Bytes::gb(60.0),
            files: 100,
            dirs: 5,
            concurrency: 2,
            parallelism: 2,
            checksum: true,
        });
    }
    sim.set_lmt_monitor(LmtMonitor::new(
        vec![EndpointId(0), EndpointId(1)],
        LustreFs::new(8, Rate::mbps(1500.0), 2),
        SimTime::ZERO,
        SimTime::seconds(n as f64 * 400.0 + 20_000.0),
    ));

    let out = sim.run();
    let features = extract_features(&out.records);
    let tests: Vec<TransferFeatures> = features.iter().filter(|f| f.id.0 < n).cloned().collect();
    assert_eq!(tests.len(), n as usize);

    let mut fit = FitConfig::default();
    fit.gbdt.n_rounds = 80;
    let cmp = compare_with_lmt(&tests, &out.lmt, &fit, 3).expect("models fit");
    assert!(
        cmp.augmented.mdape < cmp.baseline.mdape * 0.8,
        "augmented MdAPE {} not clearly below baseline {}",
        cmp.augmented.mdape,
        cmp.baseline.mdape
    );
}
