//! End-to-end continuous training: a campaign streamed record-by-record
//! through the ingest pipeline, with a live `wdt-serve` instance
//! hot-swapped to each retrained artifact over `POST /reload`.
//!
//! Three contracts are pinned down:
//!
//! 1. **Nothing is lost or altered in flight.** The incremental digest of
//!    the streamed records equals the digest of the same campaign
//!    simulated in batch, and the crash-recoverable segment store replays
//!    every record.
//! 2. **Retraining follows drift.** After a workload shift that no input
//!    feature can explain, the continuously retrained model's rolling
//!    MdAPE beats the frozen first model's — retraining pays.
//! 3. **The serving fleet follows the trainer.** Each refit lands as a
//!    versioned artifact and a `/reload`, and the server ends up serving
//!    the last version the trainer produced.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wdt_bench::CampaignSpec;
use wdt_check::{DigestBuilder, TraceDigest};
use wdt_ingest::{
    IngestConfig, IngestPipeline, RetrainConfig, RetrainDriver, SegmentStore, SwapEvent,
};
use wdt_model::ModelKind;
use wdt_serve::{AnyServer, Frontend, HttpClient, ModelRegistry, ServeConfig, ServeSchema};
use wdt_types::{SimTime, TransferRecord};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("wdt-ingest-e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

fn spec() -> CampaignSpec {
    CampaignSpec {
        seed: 401,
        days: 4.0,
        heavy_edges: 4,
        sparse_edges: 12,
        runs: 2,
        ..Default::default()
    }
}

/// Compress a record's duration 30×: rates shift massively while every
/// *input* feature (bytes, files, concurrency, competing load) stays in
/// distribution — drift only retraining can absorb.
fn accelerate(mut r: TransferRecord) -> TransferRecord {
    let dur = r.end.as_secs() - r.start.as_secs();
    r.end = SimTime::seconds(r.start.as_secs() + dur / 30.0);
    r
}

#[test]
fn streamed_campaign_retrains_and_hot_swaps_a_live_server() {
    let model_dir = tmpdir("models");
    let store_dir = tmpdir("store");

    // Seed the registry so the server can come up before the first refit;
    // the driver's own artifacts start at v000001 and sort after it.
    let seed_records = spec().simulate_serial().records;
    let data = wdt_model::build_dataset(&wdt_features::extract_features(&seed_records), false);
    let seeded = wdt_model::FittedModel::fit(&data, ModelKind::Linear, &Default::default())
        .expect("seed fit");
    std::fs::write(model_dir.join("v000000.json"), seeded.to_json()).expect("seed artifact");

    let registry =
        Arc::new(ModelRegistry::open(&model_dir, ServeSchema::prediction()).expect("registry"));
    let server =
        AnyServer::start(registry, ServeConfig::default(), Frontend::EventLoop).expect("server");
    assert_eq!(server.registry().current().version, "v000000");

    // Pipeline: on-disk segment store, linear refits every 1000 records,
    // drift detection tight enough to catch the phase-2 shift, and a swap
    // hook that reloads the live server.
    let cfg = IngestConfig {
        window: 1_500,
        chunk: 250,
        retrain: RetrainConfig {
            kind: ModelKind::Linear,
            min_train: 250,
            refit_every: 750,
            rolling_window: 600,
            drift_threshold_pct: 40.0,
            drift_patience: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    let driver = RetrainDriver::new(cfg.retrain.clone(), Some(model_dir.clone())).expect("driver");
    let store = SegmentStore::open(&store_dir).expect("store");
    let addr = server.addr();
    let reloads = Arc::new(AtomicU64::new(0));
    let reloads2 = reloads.clone();
    let on_swap: Box<dyn FnMut(&SwapEvent) + Send> = Box::new(move |ev| {
        assert!(ev.version.is_some(), "model dir configured: swaps must be versioned");
        let (status, _) =
            HttpClient::connect(addr).and_then(|mut c| c.post("/reload", "{}")).expect("reload");
        assert_eq!(status, 200);
        reloads2.fetch_add(1, Ordering::Relaxed);
    });
    let handle = IngestPipeline::start(cfg, Box::new(store), driver, Some(on_swap));

    // Phase 1: the campaign as simulated, with an incremental digest.
    let mut builder = DigestBuilder::new();
    let mut streamed = 0u64;
    let summary = spec().stream_into(&mut |r| {
        builder.push(&r);
        streamed += 1;
        assert!(handle.offer(r), "Block backpressure never sheds");
    });
    assert_eq!(streamed as usize, summary.records);

    // Phase 2: the same traffic accelerated 30× — hidden-variable drift.
    let mut phase2 = 0u64;
    CampaignSpec { seed: 402, ..spec() }.stream_into(&mut |r| {
        phase2 += 1;
        assert!(handle.offer(accelerate(r)));
    });

    let report = handle.finish().expect("pipeline");

    // Contract 1: zero loss. Every offered record was ingested, stored,
    // and the phase-1 digest matches the batch simulation bit-for-bit.
    assert_eq!(report.ingested, streamed + phase2);
    assert_eq!(report.shed, 0);
    assert_eq!(report.store_records, streamed + phase2);
    assert_eq!(builder.finish(), TraceDigest::from_records(&seed_records));
    let mut replayed = SegmentStore::open(&store_dir).expect("reopen");
    assert_eq!(replayed.recovery().truncated_bytes, 0, "clean shutdown leaves no torn tail");
    assert_eq!(replayed.replay().expect("replay").len() as u64, report.ingested);
    assert!(report.window_evicted > 0, "window stayed bounded");

    // Contract 2: retraining pays. The deployed model tracked the shift;
    // the frozen first model did not.
    assert!(report.refits >= 2, "got {} refits", report.refits);
    assert!(
        report.rolling_mdape < report.stale_mdape,
        "retrained {:.2}% must beat stale {:.2}%",
        report.rolling_mdape,
        report.stale_mdape
    );

    // Contract 3: the server followed every swap and now serves the last
    // version the trainer wrote.
    assert_eq!(reloads.load(Ordering::Relaxed), report.refits);
    let last = report.swaps.last().expect("at least one swap");
    assert_eq!(&server.registry().current().version, last.version.as_ref().expect("versioned"));
    server.shutdown();
}
